"""Convolution primitives: im2col/col2im, Conv2d and ConvTranspose2d.

The paper's three subnets are built from strided convolutions (downsampling),
strided transposed convolutions (upsampling), and stride-1 convolutions with
*replication* padding for conv layers and *zero* padding for deconv layers
(Sec. 3.4.1).  These primitives are implemented with the standard
im2col/col2im formulation so that the heavy lifting is a single matrix
product per layer, and both directions (forward and gradient) share the same
two routines.

Array layout is NCHW throughout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import kernels
from repro.nn.kernels import release_workspace, take_workspace
from repro.nn.tensor import Context, Function, Tensor, grad_enabled

#: Padding modes supported by :class:`Conv2dFunction`.
PADDING_MODES = ("zeros", "replicate")

# The im2col workspace pool lives in :mod:`repro.nn.kernels` (keyed by
# (shape, dtype), recency-ordered eviction).  Ownership is exclusive between
# take and release, so a buffer saved for a backward pass can never be
# overwritten by a concurrent forward; a graph can consequently only be
# backpropagated once through a convolution (the standard contract — the
# workspace is recycled during backward).


def pad_input(x: np.ndarray, padding: int, mode: str) -> np.ndarray:
    """Pad the two spatial axes of an NCHW array."""
    if padding == 0:
        return x
    if mode == "zeros":
        return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    if mode == "replicate":
        return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="edge")
    raise ValueError(f"unknown padding mode {mode!r}; expected one of {PADDING_MODES}")


def unpad_gradient(grad_padded: np.ndarray, padding: int, mode: str) -> np.ndarray:
    """Adjoint of :func:`pad_input`: fold border gradients back into the crop."""
    if padding == 0:
        return grad_padded
    core = grad_padded[:, :, padding:-padding, padding:-padding].copy()
    if mode == "zeros":
        return core
    if mode == "replicate":
        # Replication padding copies edge pixels outward, so the adjoint adds
        # the border gradients back onto the edge rows/columns they came from.
        top = grad_padded[:, :, :padding, padding:-padding].sum(axis=2)
        bottom = grad_padded[:, :, -padding:, padding:-padding].sum(axis=2)
        core[:, :, 0, :] += top
        core[:, :, -1, :] += bottom
        left = grad_padded[:, :, padding:-padding, :padding].sum(axis=3)
        right = grad_padded[:, :, padding:-padding, -padding:].sum(axis=3)
        core[:, :, :, 0] += left
        core[:, :, :, -1] += right
        # The four corner blocks replicate the corner pixels.
        core[:, :, 0, 0] += grad_padded[:, :, :padding, :padding].sum(axis=(2, 3))
        core[:, :, 0, -1] += grad_padded[:, :, :padding, -padding:].sum(axis=(2, 3))
        core[:, :, -1, 0] += grad_padded[:, :, -padding:, :padding].sum(axis=(2, 3))
        core[:, :, -1, -1] += grad_padded[:, :, -padding:, -padding:].sum(axis=(2, 3))
        return core
    raise ValueError(f"unknown padding mode {mode!r}; expected one of {PADDING_MODES}")


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution."""
    return (size + 2 * padding - kernel) // stride + 1


def conv_transpose_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a transposed convolution."""
    return (size - 1) * stride - 2 * padding + kernel


def im2col(
    x_padded: np.ndarray, kernel: int, stride: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Unfold sliding windows into columns (via the active kernel backend).

    Parameters
    ----------
    x_padded:
        Padded input, shape ``(N, C, H, W)``.
    kernel / stride:
        Square kernel size and stride.
    out:
        Optional preallocated C-contiguous destination of shape
        ``(N, C * kernel * kernel, OH * OW)`` (e.g. a pooled workspace);
        allocated when omitted.

    Returns
    -------
    Array of shape ``(N, C * kernel * kernel, OH * OW)`` (``out`` if given).
    """
    return kernels.im2col(x_padded, kernel, stride, out=out)


def col2im(
    columns: np.ndarray,
    padded_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (via the active kernel backend)."""
    return kernels.col2im(columns, padded_shape, kernel, stride)


class Conv2dFunction(Function):
    """2-D convolution (NCHW) with stride, padding and padding-mode support."""

    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
        padding_mode: str = "zeros",
    ) -> np.ndarray:
        out_channels, in_channels, kernel, _ = weight.shape
        if x.ndim != 4 or x.shape[1] != in_channels:
            raise ValueError(
                f"input shape {x.shape} incompatible with weight shape {weight.shape}"
            )
        x_padded = pad_input(x, padding, padding_mode)
        out_h = conv_output_size(x.shape[2], kernel, stride, padding)
        out_w = conv_output_size(x.shape[3], kernel, stride, padding)
        workspace = take_workspace(
            (x.shape[0], in_channels * kernel * kernel, out_h * out_w),
            dtype=x_padded.dtype,
        )
        columns = im2col(x_padded, kernel, stride, out=workspace)
        weight_matrix = weight.reshape(out_channels, -1)
        # matmul broadcasts (O, F) @ (N, F, P) -> (N, O, P) straight into
        # batched GEMM; unlike einsum there is no per-call path search, which
        # matters when serving many small maps.
        output = kernels.matmul(weight_matrix, columns)
        output = output.reshape(x.shape[0], out_channels, out_h, out_w)
        if bias is not None:
            output = output + bias.reshape(1, -1, 1, 1)
        if grad_enabled():
            # The unfolded columns are by far the largest forward buffer;
            # the backward pass recycles them into the workspace pool, so
            # inference (no_grad) batches must not keep them alive either.
            ctx.save(columns, weight, x_padded.shape)
        else:
            release_workspace(columns)
        ctx.attrs.update(
            stride=stride,
            padding=padding,
            padding_mode=padding_mode,
            has_bias=bias is not None,
            input_shape=x.shape,
        )
        return output

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        if ctx.attrs.get("workspace_recycled"):
            raise RuntimeError(
                "cannot backpropagate through the same convolution twice: "
                "its im2col workspace was recycled by the first backward pass"
            )
        columns, weight, padded_shape = ctx.saved
        stride = ctx.attrs["stride"]
        padding = ctx.attrs["padding"]
        padding_mode = ctx.attrs["padding_mode"]
        out_channels, in_channels, kernel, _ = weight.shape

        batch = grad.shape[0]
        grad_flat = grad.reshape(batch, out_channels, -1)  # (N, O, OH*OW)

        weight_matrix = weight.reshape(out_channels, -1)
        # (N, O, P) x (N, P, F) batched GEMM summed over the batch — same
        # contraction as einsum("nop,nfp->of") without the per-call path
        # search overhead.
        grad_weight = (
            kernels.matmul(grad_flat, columns.swapaxes(1, 2)).sum(axis=0).reshape(weight.shape)
        )
        grad_bias = grad_flat.sum(axis=(0, 2)) if ctx.attrs["has_bias"] else None

        # The saved columns are no longer needed past the weight gradient;
        # hand the buffer back to the pool for the next step's forward pass.
        ctx.saved = ()
        ctx.attrs["workspace_recycled"] = True
        release_workspace(columns)
        del columns

        needs = ctx.needs_input_grad
        if needs and not needs[0]:
            # Nobody consumes the input gradient (first-layer convolutions on
            # the minibatch itself) — skip the fold entirely.
            return None, grad_weight, grad_bias

        # Plain matmul (no out=) — numpy's out= variant takes a slower
        # buffered path; the transient result is parked in the pool instead.
        grad_columns = kernels.matmul(weight_matrix.T, grad_flat)
        grad_padded = col2im(grad_columns, padded_shape, kernel, stride)
        release_workspace(grad_columns)
        grad_input = unpad_gradient(grad_padded, padding, padding_mode)
        return grad_input, grad_weight, grad_bias


class ConvTranspose2dFunction(Function):
    """2-D transposed convolution (NCHW), the adjoint of :class:`Conv2dFunction`.

    Weight layout follows the PyTorch convention ``(C_in, C_out, k, k)``.
    Only zero padding is supported, matching the paper's deconvolution layers.
    """

    @staticmethod
    def forward(
        ctx: Context,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        in_channels, out_channels, kernel, _ = weight.shape
        if x.ndim != 4 or x.shape[1] != in_channels:
            raise ValueError(
                f"input shape {x.shape} incompatible with weight shape {weight.shape}"
            )
        batch, _, in_h, in_w = x.shape
        out_h = conv_transpose_output_size(in_h, kernel, stride, padding)
        out_w = conv_transpose_output_size(in_w, kernel, stride, padding)
        padded_shape = (batch, out_channels, out_h + 2 * padding, out_w + 2 * padding)

        x_flat = x.reshape(batch, in_channels, in_h * in_w)
        weight_matrix = weight.reshape(in_channels, out_channels * kernel * kernel)
        # Plain matmul (no out=) — numpy's out= variant takes a slower
        # buffered path; the transient result is parked in the pool instead.
        columns = kernels.matmul(weight_matrix.T, x_flat)
        output_padded = col2im(columns, padded_shape, kernel, stride)
        release_workspace(columns)
        if padding > 0:
            output = output_padded[:, :, padding:-padding, padding:-padding]
        else:
            output = output_padded
        if bias is not None:
            output = output + bias.reshape(1, -1, 1, 1)
        if grad_enabled():
            ctx.save(x_flat, weight, padded_shape)
        ctx.attrs.update(
            stride=stride, padding=padding, has_bias=bias is not None, input_shape=x.shape
        )
        return np.ascontiguousarray(output)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x_flat, weight, padded_shape = ctx.saved
        stride = ctx.attrs["stride"]
        padding = ctx.attrs["padding"]
        in_channels, out_channels, kernel, _ = weight.shape
        batch = grad.shape[0]

        if padding > 0:
            grad_padded = np.zeros(padded_shape, dtype=grad.dtype)
            grad_padded[:, :, padding:-padding, padding:-padding] = grad
        else:
            grad_padded = grad
        in_h, in_w = ctx.attrs["input_shape"][2:]
        workspace = take_workspace(
            (batch, out_channels * kernel * kernel, in_h * in_w),
            dtype=grad_padded.dtype,
        )
        grad_columns = im2col(grad_padded, kernel, stride, out=workspace)  # (N, O*k*k, H*W)

        weight_matrix = weight.reshape(in_channels, out_channels * kernel * kernel)
        needs = ctx.needs_input_grad
        if needs and not needs[0]:
            grad_x = None
        else:
            # Batched GEMM replacements for einsum("if,nfp->nip") — no
            # per-call contraction-path search.
            grad_x = kernels.matmul(weight_matrix, grad_columns).reshape(ctx.attrs["input_shape"])

        grad_weight = (
            kernels.matmul(x_flat, grad_columns.swapaxes(1, 2)).sum(axis=0).reshape(weight.shape)
        )
        release_workspace(grad_columns)
        grad_bias = grad.sum(axis=(0, 2, 3)) if ctx.attrs["has_bias"] else None
        return grad_x, grad_weight, grad_bias


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    padding_mode: str = "zeros",
) -> Tensor:
    """Functional 2-D convolution on :class:`~repro.nn.tensor.Tensor` inputs."""
    if bias is None:
        return Conv2dFunction.apply(
            x, weight, stride=stride, padding=padding, padding_mode=padding_mode
        )
    return Conv2dFunction.apply(
        x, weight, bias, stride=stride, padding=padding, padding_mode=padding_mode
    )


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Functional 2-D transposed convolution on :class:`Tensor` inputs."""
    if bias is None:
        return ConvTranspose2dFunction.apply(x, weight, stride=stride, padding=padding)
    return ConvTranspose2dFunction.apply(x, weight, bias, stride=stride, padding=padding)
