"""Neural-network module system built on the autograd tensor.

Mirrors the small subset of ``torch.nn`` the paper's model needs: a
:class:`Module` base with parameter registration and ``state_dict`` support,
:class:`Conv2d` (with replication or zero padding), :class:`ConvTranspose2d`,
:class:`ReLU`, :class:`Linear` and :class:`Sequential`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.nn import init
from repro.nn.conv import PADDING_MODES, conv2d, conv_transpose2d
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.random import RandomState, ensure_rng


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Submodules and parameters assigned as attributes are registered
    automatically, so ``parameters()``, ``state_dict()`` and
    ``load_state_dict()`` work for arbitrarily nested models.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute registration ----------------------------------------- #

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ------------------------------------------------ #

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(parameter.size for parameter in self.parameters())

    def zero_grad(self) -> None:
        """Drop gradients of every parameter (sets them to ``None``).

        The next backward pass then *writes* each parameter's first gradient
        contribution instead of accumulating into zero-filled arrays — no
        per-step allocation churn (see :meth:`repro.nn.Optimizer.zero_grad`).
        """
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- train / eval ------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (kept for API familiarity)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def freeze(self) -> "Module":
        """Disable gradients on every parameter and switch to eval mode.

        Served models never train again, so freezing them keeps forward
        passes from recording the autograd graph even outside ``no_grad``.
        """
        for parameter in self.parameters():
            parameter.requires_grad = False
        return self.eval()

    def unfreeze(self) -> "Module":
        """Re-enable gradients on every parameter and return to train mode."""
        for parameter in self.parameters():
            parameter.requires_grad = True
        return self.train(True)

    # -- state dict -------------------------------------------------------- #

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of every parameter keyed by its qualified name."""
        return OrderedDict(
            (name, parameter.data.copy()) for name, parameter in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Values are coerced to each parameter's *current* dtype, so a float32
        module loads float64 master weights without silently reverting to
        full precision (and the default-float64 case is unchanged).
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {parameter.data.shape}, "
                    f"state provides {value.shape}"
                )
            parameter.data = value.copy()

    def astype(self, dtype) -> "Module":
        """Cast every parameter in place to a kernel dtype and return self.

        The cast rebinds each parameter's ``data`` array (gradients are
        dropped), so anything caching array identities — e.g. a predictor's
        fingerprint memo — observes the change.  Training requires float64;
        cast to float32 only for inference.
        """
        from repro.nn import kernels

        dtype = kernels.canonical_dtype(dtype)
        for parameter in self.parameters():
            if parameter.data.dtype != dtype:
                parameter.data = parameter.data.astype(dtype)
                parameter.grad = None
        return self

    # -- forward ------------------------------------------------------------ #

    def forward(self, *args, **kwargs) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Conv2d(Module):
    """2-D convolution layer (NCHW).

    Parameters
    ----------
    in_channels / out_channels / kernel_size / stride / padding:
        Usual convolution hyper-parameters (square kernels only).
    padding_mode:
        ``"replicate"`` (paper's choice for conv layers) or ``"zeros"``.
    bias:
        Whether to add a per-channel bias.
    seed:
        Seed for weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        padding_mode: str = "replicate",
        bias: bool = True,
        seed: RandomState = None,
    ):
        super().__init__()
        if padding_mode not in PADDING_MODES:
            raise ValueError(f"padding_mode must be one of {PADDING_MODES}, got {padding_mode!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.padding_mode = padding_mode
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), fan_in, seed)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            padding_mode=self.padding_mode,
        )


class ConvTranspose2d(Module):
    """2-D transposed-convolution layer (NCHW), zero padding only."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 4,
        stride: int = 2,
        padding: int = 1,
        bias: bool = True,
        seed: RandomState = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((in_channels, out_channels, kernel_size, kernel_size), fan_in, seed)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv_transpose2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: RandomState = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, seed)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        output = x @ self.weight.transpose()
        if self.bias is not None:
            output = output + self.bias
        return output


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    """Pass-through module (useful as a placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x
