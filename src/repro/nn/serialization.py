"""Checkpoint save / load for :class:`~repro.nn.modules.Module` models.

Checkpoints are plain ``.npz`` archives: one array per parameter keyed by its
qualified name, plus optional JSON-encoded metadata (e.g. the feature
normaliser or training configuration) and optional *extra* arrays (e.g. a
design's distance tensor).  Non-parameter entries use reserved ``__``-prefixed
keys so they can never collide with parameter names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from repro.nn.modules import Module

_METADATA_KEY = "__metadata_json__"
_EXTRA_PREFIX = "__extra__"
_RESERVED_PREFIX = "__"


def save_checkpoint(
    module: Module,
    path: Union[str, Path],
    metadata: Optional[dict] = None,
    extras: Optional[Mapping[str, np.ndarray]] = None,
) -> None:
    """Save a module's parameters (plus optional metadata/extras) to ``path``.

    ``extras`` maps names to arrays stored alongside the parameters in the
    same archive; read them back with :func:`load_extras`.

    Parameters are always stored as float64 master weights regardless of the
    module's serving dtype — upcasting float32 values is lossless, so a
    float32 module round-trips exactly and the checkpoint can later be served
    at either precision.
    """
    payload = {
        name: np.asarray(value, dtype=np.float64)
        for name, value in module.state_dict().items()
    }
    if metadata is not None:
        payload[_METADATA_KEY] = np.array(json.dumps(metadata))
    for name, value in (extras or {}).items():
        payload[_EXTRA_PREFIX + name] = np.asarray(value)
    np.savez_compressed(path, **payload)


def load_checkpoint(
    module: Module,
    path: Union[str, Path],
) -> Optional[dict]:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    Returns the metadata dictionary when one was stored, else ``None``.
    Reserved (``__``-prefixed) entries such as extras are ignored here.
    """
    with np.load(path, allow_pickle=False) as data:
        state = {
            key: data[key] for key in data.files if not key.startswith(_RESERVED_PREFIX)
        }
        metadata = None
        if _METADATA_KEY in data.files:
            metadata = json.loads(str(data[_METADATA_KEY]))
    module.load_state_dict(state)
    return metadata


def load_extras(path: Union[str, Path]) -> dict[str, np.ndarray]:
    """Read the extra arrays stored in a checkpoint (empty dict if none)."""
    with np.load(path, allow_pickle=False) as data:
        return {
            key[len(_EXTRA_PREFIX):]: np.asarray(data[key])
            for key in data.files
            if key.startswith(_EXTRA_PREFIX)
        }
