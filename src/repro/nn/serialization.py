"""Checkpoint save / load for :class:`~repro.nn.modules.Module` models.

Checkpoints are plain ``.npz`` archives: one array per parameter keyed by its
qualified name, plus optional JSON-encoded metadata (e.g. the feature
normaliser or training configuration).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.nn.modules import Module

_METADATA_KEY = "__metadata_json__"


def save_checkpoint(
    module: Module,
    path: Union[str, Path],
    metadata: Optional[dict] = None,
) -> None:
    """Save a module's parameters (and optional metadata) to ``path``."""
    payload = {name: value for name, value in module.state_dict().items()}
    if metadata is not None:
        payload[_METADATA_KEY] = np.array(json.dumps(metadata))
    np.savez_compressed(path, **payload)


def load_checkpoint(
    module: Module,
    path: Union[str, Path],
) -> Optional[dict]:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    Returns the metadata dictionary when one was stored, else ``None``.
    """
    with np.load(path, allow_pickle=False) as data:
        state = {key: data[key] for key in data.files if key != _METADATA_KEY}
        metadata = None
        if _METADATA_KEY in data.files:
            metadata = json.loads(str(data[_METADATA_KEY]))
    module.load_state_dict(state)
    return metadata
