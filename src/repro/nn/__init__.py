"""A compact numpy-only deep-learning library.

PyTorch (the paper's framework) is unavailable offline, so this subpackage
provides the pieces the paper's model needs: an autograd tensor (with
tape-recorded graphs for hot training loops), Conv2d / ConvTranspose2d with
replication or zero padding and pooled im2col workspaces, ReLU, L1/MSE/Huber
losses, fused SGD/Adam optimisers and checkpointing.  Every operator's
gradient is validated against numerical differentiation in the test suite.
(Minibatch shuffling lives in the training engine itself —
:mod:`repro.core.training` — which batches whole minibatches through one
autograd graph per step.)

All dense kernels (matmul / im2col / col2im, the workspace pool, dtype and
threading policy) dispatch through :mod:`repro.nn.kernels`: float64 is the
bit-exact reference and training precision, float32 the opt-in inference
fast path, and accelerated backends can be registered behind the same entry
points.
"""

from repro.nn import kernels
from repro.nn.tensor import Tensor, as_tensor, cat, stack, no_grad, record_graph
from repro.nn.conv import (
    PADDING_MODES,
    conv2d,
    conv_transpose2d,
    conv_output_size,
    conv_transpose_output_size,
    im2col,
    col2im,
)
from repro.nn.modules import (
    Conv2d,
    ConvTranspose2d,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.losses import huber_loss, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import load_checkpoint, load_extras, save_checkpoint
from repro.nn import init

__all__ = [
    "kernels",
    "Tensor",
    "as_tensor",
    "cat",
    "stack",
    "no_grad",
    "record_graph",
    "PADDING_MODES",
    "conv2d",
    "conv_transpose2d",
    "conv_output_size",
    "conv_transpose_output_size",
    "im2col",
    "col2im",
    "Conv2d",
    "ConvTranspose2d",
    "Identity",
    "Linear",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "l1_loss",
    "mse_loss",
    "huber_loss",
    "SGD",
    "Adam",
    "Optimizer",
    "load_checkpoint",
    "load_extras",
    "save_checkpoint",
    "init",
]
