"""A compact numpy-only deep-learning library.

PyTorch (the paper's framework) is unavailable offline, so this subpackage
provides the pieces the paper's model needs: an autograd tensor, Conv2d /
ConvTranspose2d with replication or zero padding, ReLU, L1/MSE/Huber losses,
SGD/Adam optimisers, batching helpers and checkpointing.  Every operator's
gradient is validated against numerical differentiation in the test suite.
"""

from repro.nn.tensor import Tensor, as_tensor, cat, stack, no_grad
from repro.nn.conv import (
    PADDING_MODES,
    conv2d,
    conv_transpose2d,
    conv_output_size,
    conv_transpose_output_size,
    im2col,
    col2im,
)
from repro.nn.modules import (
    Conv2d,
    ConvTranspose2d,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.losses import huber_loss, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.data import ArrayDataset, BatchIterator
from repro.nn.serialization import load_checkpoint, load_extras, save_checkpoint
from repro.nn import init

__all__ = [
    "Tensor",
    "as_tensor",
    "cat",
    "stack",
    "no_grad",
    "PADDING_MODES",
    "conv2d",
    "conv_transpose2d",
    "conv_output_size",
    "conv_transpose_output_size",
    "im2col",
    "col2im",
    "Conv2d",
    "ConvTranspose2d",
    "Identity",
    "Linear",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "l1_loss",
    "mse_loss",
    "huber_loss",
    "SGD",
    "Adam",
    "Optimizer",
    "ArrayDataset",
    "BatchIterator",
    "load_checkpoint",
    "load_extras",
    "save_checkpoint",
    "init",
]
