"""Feature pipeline: spatial tiling, temporal compression, feature extraction.

Implements Sec. 3.2 and 3.3 of the paper: the spatial compression of the PDN
into an ``m x n`` tile array, Algorithm 1's temporal compression of the
current vector, and the two-feature extraction (load-current maps and
distance-to-bump tensor) together with the normalisation applied before the
CNN.
"""

from repro.features.spatial import (
    average_current_map,
    load_current_maps,
    node_noise_to_tile_map,
    tile_incidence_matrix,
    tile_load_count_map,
    tile_nominal_current_map,
)
from repro.features.temporal import (
    TemporalCompressionResult,
    compress_current_maps,
    compress_trace,
)
from repro.features.extraction import (
    FeatureNormalizer,
    VectorFeatures,
    current_summary_maps,
    distance_feature,
    extract_vector_features,
    fit_normalizer,
    normalized_distance_feature,
)

__all__ = [
    "load_current_maps",
    "average_current_map",
    "node_noise_to_tile_map",
    "tile_incidence_matrix",
    "tile_load_count_map",
    "tile_nominal_current_map",
    "TemporalCompressionResult",
    "compress_current_maps",
    "compress_trace",
    "FeatureNormalizer",
    "VectorFeatures",
    "current_summary_maps",
    "distance_feature",
    "extract_vector_features",
    "fit_normalizer",
    "normalized_distance_feature",
]
