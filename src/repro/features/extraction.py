"""Feature extraction and normalisation (Sec. 3.3 of the paper).

Two features only, both cheap to obtain from the standard sign-off inputs:

* the **load-current tile maps** (the same excitation the commercial tool
  consumes, summed per tile), optionally temporally compressed by
  Algorithm 1, and
* the **distance-to-bump tensor** ``D in R^{B x m x n}`` — the Euclidean
  distance from every tile centre to every power bump.

This module also provides the per-design :class:`FeatureNormalizer` (the CNN
trains on normalised tensors, predictions are mapped back to volts) and the
closed-form per-tile current statistics (``I_max``, ``I_mean``, ``I_msd``)
used by ablations and baselines that skip the learned fusion subnet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.pdn.designs import Design
from repro.pdn.geometry import distance_to_bumps
from repro.features.spatial import load_current_maps
from repro.features.temporal import TemporalCompressionResult, compress_current_maps
from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive


def distance_feature(design: Design) -> np.ndarray:
    """Distance-to-bump tensor ``D`` with shape ``(B, m, n)`` in um."""
    return distance_to_bumps(design.tile_grid, design.bump_locations)


def normalized_distance_feature(design: Design) -> np.ndarray:
    """Distance tensor scaled by the die diagonal (values in ``[0, ~1]``)."""
    diagonal = float(np.hypot(design.die.width, design.die.height))
    return distance_feature(design) / diagonal


def current_summary_maps(current_maps: np.ndarray) -> np.ndarray:
    """Closed-form per-tile current statistics, shape ``(3, m, n)``.

    Channel 0: maximum current over time (``I_max``); channel 1: mean of the
    maximum and minimum (``I_mean``); channel 2: ``mu + 3*sigma`` over time
    (``I_msd``) — the three statistics the current-map-fusion subnet produces
    (Sec. 3.4.2).  Useful as a non-learned stand-in for that subnet.
    """
    current_maps = np.asarray(current_maps, dtype=float)
    if current_maps.ndim != 3:
        raise ValueError(f"current_maps must have shape (T, m, n), got {current_maps.shape}")
    maximum = current_maps.max(axis=0)
    minimum = current_maps.min(axis=0)
    mean = current_maps.mean(axis=0)
    std = current_maps.std(axis=0)
    return np.stack([maximum, 0.5 * (maximum + minimum), mean + 3.0 * std])


@dataclass
class FeatureNormalizer:
    """Per-design scaling applied before the CNN and inverted afterwards.

    Attributes
    ----------
    current_scale:
        Divisor applied to current maps (A); chosen as a high percentile of
        the per-tile currents seen during training so maps land mostly in
        ``[0, 1]``.
    distance_scale:
        Divisor applied to the distance tensor (um); the die diagonal.
    noise_scale:
        Divisor applied to the target noise maps (V); a high percentile of
        the training worst-case noise.
    """

    current_scale: float = 1.0
    distance_scale: float = 1.0
    noise_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.current_scale, "current_scale")
        check_positive(self.distance_scale, "distance_scale")
        check_positive(self.noise_scale, "noise_scale")

    def normalize_currents(self, maps: np.ndarray) -> np.ndarray:
        """Scale current maps into the network's input range.

        Shape-agnostic: works on a single ``(T, m, n)`` stack as well as on a
        batched ``(N, T, m, n)`` array.
        """
        return np.asarray(maps, dtype=float) / self.current_scale

    def normalize_current_batch(
        self, maps_batch: Union[np.ndarray, Sequence[np.ndarray]]
    ) -> Union[np.ndarray, list[np.ndarray]]:
        """Scale a batch of current-map stacks (leading sample dimension).

        Accepts a dense ``(N, T, m, n)`` array or a ragged sequence of
        ``(T_i, m, n)`` stacks; the return type mirrors the input.
        """
        if isinstance(maps_batch, np.ndarray):
            if maps_batch.ndim != 4:
                raise ValueError(
                    f"batched current maps must have shape (N, T, m, n), got {maps_batch.shape}"
                )
            return self.normalize_currents(maps_batch)
        return [self.normalize_currents(maps) for maps in maps_batch]

    def normalize_distance(self, tensor: np.ndarray) -> np.ndarray:
        """Scale the distance tensor into the network's input range."""
        return np.asarray(tensor, dtype=float) / self.distance_scale

    def normalize_noise(self, noise: np.ndarray) -> np.ndarray:
        """Scale a noise map (V) into the network's output range."""
        return np.asarray(noise, dtype=float) / self.noise_scale

    def denormalize_noise(self, noise: np.ndarray) -> np.ndarray:
        """Map a network output back to volts.

        Dtype-preserving for float inputs: a float32 serving pass yields a
        float32 noise map (the scale factor is a weak Python scalar), while
        non-float inputs are still coerced to float64.
        """
        noise = np.asarray(noise)
        if noise.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            noise = noise.astype(float)
        return noise * self.noise_scale

    def to_dict(self) -> dict:
        """Serialisable representation (stored with model checkpoints)."""
        return {
            "current_scale": self.current_scale,
            "distance_scale": self.distance_scale,
            "noise_scale": self.noise_scale,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FeatureNormalizer":
        """Rebuild a normaliser from :meth:`to_dict` output."""
        return cls(
            current_scale=float(payload["current_scale"]),
            distance_scale=float(payload["distance_scale"]),
            noise_scale=float(payload["noise_scale"]),
        )


def fit_normalizer(
    design: Design,
    current_map_stack: np.ndarray,
    noise_map_stack: Optional[np.ndarray] = None,
    percentile: float = 99.0,
) -> FeatureNormalizer:
    """Fit a :class:`FeatureNormalizer` from training data.

    Parameters
    ----------
    design:
        The design (sets the distance scale from the die diagonal).
    current_map_stack:
        Any stack of current tile maps (the percentile of its positive values
        becomes the current scale).
    noise_map_stack:
        Ground-truth noise maps; when omitted the noise scale falls back to
        20% of Vdd, a generous bound on realistic worst-case noise.
    percentile:
        Percentile used for the current/noise scales (robust to outliers).
    """
    current_values = np.asarray(current_map_stack, dtype=float).ravel()
    positive = current_values[current_values > 0]
    current_scale = float(np.percentile(positive, percentile)) if positive.size else 1.0
    if current_scale <= 0:
        current_scale = 1.0

    if noise_map_stack is not None:
        noise_values = np.asarray(noise_map_stack, dtype=float).ravel()
        noise_scale = float(np.percentile(noise_values, percentile))
        if noise_scale <= 0:
            noise_scale = 0.2 * design.spec.vdd
    else:
        noise_scale = 0.2 * design.spec.vdd

    return FeatureNormalizer(
        current_scale=current_scale,
        distance_scale=float(np.hypot(design.die.width, design.die.height)),
        noise_scale=noise_scale,
    )


@dataclass
class VectorFeatures:
    """Model-ready features extracted from one test vector.

    Attributes
    ----------
    current_maps:
        (Compressed) load-current tile maps, shape ``(T', m, n)``, in amperes
        (unnormalised — normalisation happens inside the predictor so the
        same features can be reused across models).
    compression:
        Bookkeeping from Algorithm 1 (None when compression was disabled).
    name:
        The originating trace name.
    """

    current_maps: np.ndarray
    compression: Optional[TemporalCompressionResult] = None
    name: str = ""

    @property
    def num_steps(self) -> int:
        """Number of retained time stamps."""
        return int(self.current_maps.shape[0])

    @property
    def tile_shape(self) -> tuple[int, int]:
        """Tile-map shape ``(m, n)``."""
        return self.current_maps.shape[1], self.current_maps.shape[2]

    def summary_maps(self) -> np.ndarray:
        """Closed-form ``(3, m, n)`` current statistics of the retained stamps."""
        return current_summary_maps(self.current_maps)


def extract_vector_features(
    trace: CurrentTrace,
    design: Design,
    compression_rate: Optional[float] = 0.3,
    rate_step: float = 0.05,
) -> VectorFeatures:
    """Spatially tile and temporally compress one test vector.

    Parameters
    ----------
    trace:
        The switching-current test vector.
    design:
        The design it excites.
    compression_rate:
        Algorithm-1 retention rate; ``None`` (or ``1.0``) disables temporal
        compression.
    rate_step:
        Algorithm-1 sweep step.
    """
    maps = load_current_maps(trace, design)
    return _features_from_maps(maps, trace.name, compression_rate, rate_step)


def _features_from_maps(
    maps: np.ndarray,
    name: str,
    compression_rate: Optional[float],
    rate_step: float,
) -> VectorFeatures:
    """Apply Algorithm-1 compression to pre-tiled maps of one vector."""
    if compression_rate is None or compression_rate >= 1.0:
        return VectorFeatures(current_maps=maps, compression=None, name=name)
    result = compress_current_maps(maps, compression_rate, rate_step)
    return VectorFeatures(
        current_maps=result.compressed_maps, compression=result, name=name
    )


def extract_vector_features_batch(
    traces: Sequence[CurrentTrace],
    design: Design,
    compression_rate: Optional[float] = 0.3,
    rate_step: float = 0.05,
) -> list[VectorFeatures]:
    """Extract features for a batch of vectors sharing one design.

    The spatial tiling of the whole batch is a single sparse product (the
    per-trace rows are independent, so each vector's maps are bit-identical
    to :func:`extract_vector_features`); the temporal compression then runs
    per vector, since Algorithm 1 ranks each vector's own time stamps.
    This is the feature path of the dataset factory
    (:mod:`repro.datagen`).

    Parameters
    ----------
    traces:
        Test vectors, all exciting ``design`` (lengths may differ).
    design:
        The shared design.
    compression_rate / rate_step:
        Algorithm-1 parameters, as in :func:`extract_vector_features`.

    Returns
    -------
    One :class:`VectorFeatures` per trace, in input order.
    """
    traces = list(traces)
    if not traces:
        return []
    for trace in traces:
        if trace.num_loads != design.num_loads:
            raise ValueError(
                f"trace has {trace.num_loads} loads but design {design.name!r} "
                f"has {design.num_loads}"
            )
    from repro.features.spatial import load_tile_incidence

    tile_grid = design.tile_grid
    incidence = load_tile_incidence(design)
    stacked = np.concatenate([trace.currents for trace in traces], axis=0)
    tiled = np.asarray(stacked @ incidence)
    features = []
    offset = 0
    for trace in traces:
        maps = tiled[offset:offset + trace.num_steps].reshape(
            trace.num_steps, tile_grid.m, tile_grid.n
        )
        offset += trace.num_steps
        features.append(
            _features_from_maps(maps, trace.name, compression_rate, rate_step)
        )
    return features
