"""Temporal compression of current vectors (Algorithm 1 of the paper).

The idea: time stamps with *moderate* total current rarely set the worst-case
noise — the dangerous stamps are the heavy-switching ones (and the low ones
matter for the di/dt swing into them).  Algorithm 1 therefore keeps a
fraction ``r`` of the stamps, taken from the two tails of the total-current
distribution, choosing the tail split so that the retained set's
``mu + 3*sigma`` statistic matches the original sequence as closely as
possible.

The implementation mirrors the paper's pseudo-code exactly (ascending sort of
the per-stamp total current, sweep of the lower-tail share ``r0`` in steps of
``delta_r``), and returns both the compressed maps and enough bookkeeping to
reproduce Fig. 6 (accuracy / runtime versus compression rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.waveform import CurrentTrace
from repro.utils import check_positive


@dataclass
class TemporalCompressionResult:
    """Outcome of Algorithm 1 on one current-map sequence.

    Attributes
    ----------
    selected_indices:
        Indices of the retained time stamps, in original (chronological)
        order.
    compressed_maps:
        The retained current maps, shape ``(r*N, m, n)``.
    compression_rate:
        The requested rate ``r`` (fraction of stamps retained).
    lower_tail_rate:
        The selected lower-tail share ``r_s`` from the sweep.
    original_mu_3sigma / compressed_mu_3sigma:
        The matched statistic before and after compression.
    """

    selected_indices: np.ndarray
    compressed_maps: np.ndarray
    compression_rate: float
    lower_tail_rate: float
    original_mu_3sigma: float
    compressed_mu_3sigma: float

    @property
    def num_selected(self) -> int:
        """Number of retained time stamps."""
        return int(self.selected_indices.shape[0])

    @property
    def statistic_error(self) -> float:
        """Absolute mismatch of the ``mu + 3*sigma`` statistic."""
        return abs(self.original_mu_3sigma - self.compressed_mu_3sigma)


def _mu_plus_3sigma(values: np.ndarray) -> float:
    """``mu + 3*sigma`` with the population standard deviation (as in Alg. 1)."""
    return float(np.mean(values) + 3.0 * np.std(values))


def compress_current_maps(
    current_maps: np.ndarray,
    compression_rate: float,
    rate_step: float = 0.05,
) -> TemporalCompressionResult:
    """Apply Algorithm 1 to a sequence of current tile maps.

    Parameters
    ----------
    current_maps:
        Array of shape ``(N, m, n)`` — one load-current tile map per stamp.
    compression_rate:
        Fraction ``r`` of time stamps to retain, in ``(0, 1]``.  ``1.0``
        short-circuits to "keep everything".
    rate_step:
        Sweep step ``delta_r`` for the lower-tail share.
    """
    current_maps = np.asarray(current_maps, dtype=float)
    if current_maps.ndim != 3:
        raise ValueError(f"current_maps must have shape (N, m, n), got {current_maps.shape}")
    if not 0.0 < compression_rate <= 1.0:
        raise ValueError(f"compression_rate must be in (0, 1], got {compression_rate}")
    check_positive(rate_step, "rate_step")

    num_steps = current_maps.shape[0]
    total_current = current_maps.reshape(num_steps, -1).sum(axis=1)
    original_statistic = _mu_plus_3sigma(total_current)

    keep = max(1, int(round(compression_rate * num_steps)))
    if keep >= num_steps:
        indices = np.arange(num_steps)
        return TemporalCompressionResult(
            selected_indices=indices,
            compressed_maps=current_maps,
            compression_rate=compression_rate,
            lower_tail_rate=0.0,
            original_mu_3sigma=original_statistic,
            compressed_mu_3sigma=original_statistic,
        )

    order = np.argsort(total_current, kind="stable")  # ascending
    sorted_totals = total_current[order]

    best_distance = np.inf
    best_lower_count = 0
    lower_rate = 0.0
    while lower_rate <= compression_rate + 1e-12:
        lower_count = int(round(lower_rate * num_steps))
        lower_count = min(lower_count, keep)
        upper_count = keep - lower_count
        candidate = np.concatenate(
            [sorted_totals[:lower_count], sorted_totals[num_steps - upper_count:]]
        ) if upper_count > 0 else sorted_totals[:lower_count]
        if candidate.size:
            distance = abs(original_statistic - _mu_plus_3sigma(candidate))
            if distance < best_distance:
                best_distance = distance
                best_lower_count = lower_count
        lower_rate += rate_step

    upper_count = keep - best_lower_count
    if upper_count > 0:
        selected_positions = np.concatenate(
            [order[:best_lower_count], order[num_steps - upper_count:]]
        )
    else:
        selected_positions = order[:best_lower_count]
    selected_indices = np.sort(selected_positions)
    compressed = current_maps[selected_indices]
    return TemporalCompressionResult(
        selected_indices=selected_indices,
        compressed_maps=compressed,
        compression_rate=compression_rate,
        lower_tail_rate=best_lower_count / num_steps,
        original_mu_3sigma=original_statistic,
        compressed_mu_3sigma=_mu_plus_3sigma(total_current[selected_indices]),
    )


def compress_trace(
    trace: CurrentTrace,
    compression_rate: float,
    rate_step: float = 0.05,
) -> tuple[CurrentTrace, np.ndarray]:
    """Apply Algorithm 1 directly to a per-load trace.

    Returns the compressed trace (same loads, fewer stamps) and the retained
    stamp indices.  Useful when the downstream consumer wants per-load
    currents rather than tile maps (e.g. the PowerNet baseline).
    """
    totals = trace.total_current()
    # Reuse the map-based implementation by treating the total as a 1x1 map.
    result = compress_current_maps(
        totals.reshape(-1, 1, 1), compression_rate, rate_step
    )
    return trace.subset(result.selected_indices), result.selected_indices
