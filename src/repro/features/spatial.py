"""Spatial compression: from per-instance quantities to per-tile feature maps.

Sec. 3.2 of the paper replaces per-node prediction by per-tile prediction:
the layout is partitioned into an ``m x n`` tile array, instance currents are
summed per tile to form the load-current feature map, and the per-tile
worst-case noise is the maximum over the nodes inside the tile (Eq. 2).
This module implements those aggregations with a sparse incidence matrix so
that a whole trace is tiled in one sparse-matrix product.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.pdn.designs import Design
from repro.sim.waveform import CurrentTrace, per_tile_maximum


def tile_incidence_matrix(tile_index: np.ndarray, num_tiles: int) -> sp.csr_matrix:
    """Sparse one-hot matrix mapping items to tiles.

    ``incidence[item, tile] = 1`` when ``tile_index[item] == tile``; summing
    item values per tile is then a single sparse product
    ``values @ incidence``.
    """
    tile_index = np.asarray(tile_index, dtype=int)
    if tile_index.ndim != 1:
        raise ValueError(f"tile_index must be 1-D, got shape {tile_index.shape}")
    if tile_index.size and (tile_index.min() < 0 or tile_index.max() >= num_tiles):
        raise ValueError("tile_index entries out of range")
    num_items = tile_index.shape[0]
    data = np.ones(num_items)
    return sp.coo_matrix(
        (data, (np.arange(num_items), tile_index)), shape=(num_items, num_tiles)
    ).tocsr()


def load_tile_incidence(design: Design) -> sp.csr_matrix:
    """The design's load-to-tile incidence matrix, cached on the design.

    Feature extraction tiles every vector with the same ``(L, m*n)``
    incidence, so it is built once per :class:`~repro.pdn.designs.Design`
    instance and memoised on the object — corpus generation extracts
    features for thousands of vectors per design and must not rebuild it
    each time.
    """
    cached = getattr(design, "_load_tile_incidence", None)
    if cached is None:
        cached = tile_incidence_matrix(design.load_tile_index, design.tile_grid.num_tiles)
        design._load_tile_incidence = cached  # lazily attached cache slot
    return cached


def load_current_maps(trace: CurrentTrace, design: Design) -> np.ndarray:
    """Per-stamp load-current tile maps, shape ``(T, m, n)``.

    ``maps[k, i, j]`` is the total current (A) drawn inside tile ``(i, j)`` at
    time stamp ``k`` — the "load current organised as a feature map" input of
    Sec. 3.3.
    """
    if trace.num_loads != design.num_loads:
        raise ValueError(
            f"trace has {trace.num_loads} loads but design {design.name!r} has {design.num_loads}"
        )
    tile_grid = design.tile_grid
    incidence = load_tile_incidence(design)
    tiled = trace.currents @ incidence  # (T, num_tiles)
    return np.asarray(tiled).reshape(trace.num_steps, tile_grid.m, tile_grid.n)


def average_current_map(trace: CurrentTrace, design: Design) -> np.ndarray:
    """Time-averaged load-current tile map, shape ``(m, n)``.

    Used by the static-IR baseline and by feature-ablation studies.
    """
    maps = load_current_maps(trace, design)
    return maps.mean(axis=0)


def node_noise_to_tile_map(node_noise: np.ndarray, design: Design) -> np.ndarray:
    """Reduce per-die-node worst-case droop to the per-tile map of Eq. 2."""
    node_noise = np.asarray(node_noise, dtype=float)
    expected = design.node_tile_index.shape
    if node_noise.shape != expected:
        raise ValueError(
            f"node_noise must have shape {expected} (one entry per die node), got {node_noise.shape}"
        )
    tile_values = per_tile_maximum(node_noise, design.node_tile_index, design.tile_grid.num_tiles)
    return tile_values.reshape(design.tile_grid.shape)


def tile_load_count_map(design: Design) -> np.ndarray:
    """Number of loads per tile, shape ``(m, n)`` (useful diagnostic feature)."""
    counts = np.bincount(design.load_tile_index, minlength=design.tile_grid.num_tiles)
    return counts.reshape(design.tile_grid.shape).astype(float)


def tile_nominal_current_map(design: Design) -> np.ndarray:
    """Nominal (average) current per tile, shape ``(m, n)``."""
    totals = np.zeros(design.tile_grid.num_tiles)
    np.add.at(totals, design.load_tile_index, design.loads.nominal_currents)
    return totals.reshape(design.tile_grid.shape)
