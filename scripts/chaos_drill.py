#!/usr/bin/env python3
"""Chaos drill: generate a tiny corpus while dying at scripted seams.

The process-level half of the resilience story: ``tests/resilience/`` models
kills *inline* with :class:`~repro.faults.WorkerKilled`, while this drill
raises a **real** ``SIGKILL`` against its own process at exact fault-seam
ordinals — no handlers run, no ``finally`` blocks, the kernel just takes the
process.  ``tests/resilience/test_chaos_e2e.py`` runs it as a subprocess:
several killed runs against one workdir, a final run to completion, and a
clean single run in a fresh workdir — the two manifests must be
byte-identical, quarantined vectors included.

A deterministic label-poisoning fault is always armed (the first vector of
shard ``small:0`` gets a NaN label), so the drill also proves quarantine
decisions survive kill/resume cycles.

Usage::

    python scripts/chaos_drill.py --workdir /tmp/drill \
        --kill-at datagen.shard:1 --kill-at sim.solve:5
    python scripts/chaos_drill.py --workdir /tmp/drill   # run to completion

Exit status: ``-SIGKILL`` when a scripted kill fires (by construction),
``0`` after a completed run.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import faults
from repro.datagen import CorpusDesignSpec, CorpusSpec, GenerationPolicy, generate_corpus
from repro.resilience import RetryPolicy

#: Seams a drill can die at, in the order the engine reaches them.
KILLABLE_SEAMS = ("datagen.shard", "datagen.dataset", "datagen.shard_write", "sim.solve")


def drill_spec(solver_mode: str = "full") -> CorpusSpec:
    """The drill corpus: one design, 4 vectors, 2 shards — seconds to build.

    ``solver_mode="rom"`` labels the corpus through the gated Krylov
    reduced-order strategy instead of the full-order companion solver, so
    the kill/resume byte-identity guarantee is drilled against both
    labelling paths (the ROM projection is rebuilt deterministically on
    every resume — see ``docs/solvers.md``).
    """
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small",
                design="small@6",
                num_vectors=4,
                num_steps=24,
                shard_size=2,
                seed=3,
            ),
        ),
        sim_batch_size=4,
        solver_mode=solver_mode,
    )


class ChaosInjector(faults.FaultInjector):
    """SIGKILL this process at scripted seam ordinals; always poison one label.

    The poisoning runs in *every* drill (killed or clean), so the quarantine
    decision recorded in the manifest is part of the byte-identity check,
    not an artefact of which run happened to survive.
    """

    def __init__(self, kill_at):
        self.kill_at = set(kill_at)
        self.calls: dict[str, int] = {}

    def _seam(self, seam: str) -> None:
        ordinal = self.calls.get(seam, 0)
        self.calls[seam] = ordinal + 1
        if (seam, ordinal) in self.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)

    def before_shard(self, label, index):
        self._seam("datagen.shard")

    def on_shard_dataset(self, label, index, dataset):
        self._seam("datagen.dataset")
        if (label, index) == ("small", 0):
            dataset.samples[0].target[...] = np.nan
        return dataset

    def during_shard_write(self, label, index, temporary):
        self._seam("datagen.shard_write")

    def before_solve(self, design_name, num_traces):
        self._seam("sim.solve")


def parse_kill_at(specs) -> list[tuple[str, int]]:
    """Parse repeated ``seam:ordinal`` arguments into ``(seam, int)`` pairs."""
    kill_at = []
    for spec in specs:
        seam, separator, ordinal = spec.rpartition(":")
        if not separator or seam not in KILLABLE_SEAMS or not ordinal.isdigit():
            raise SystemExit(
                f"bad --kill-at {spec!r}: expected <seam>:<ordinal> with seam "
                f"one of {', '.join(KILLABLE_SEAMS)}"
            )
        kill_at.append((seam, int(ordinal)))
    return kill_at


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (or never, if killed)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", required=True, help="corpus root directory")
    parser.add_argument(
        "--kill-at",
        action="append",
        default=[],
        metavar="SEAM:ORDINAL",
        help="SIGKILL self at this seam call ordinal (repeatable)",
    )
    parser.add_argument(
        "--num-workers", type=int, default=0,
        help="worker processes; 0 (default) runs inline so kills hit this process",
    )
    parser.add_argument(
        "--solver-mode", default="full", choices=("full", "rom"),
        help="transient strategy labelling the drill corpus (default: full)",
    )
    args = parser.parse_args(argv)

    faults.install(ChaosInjector(parse_kill_at(args.kill_at)))
    report = generate_corpus(
        drill_spec(args.solver_mode),
        args.workdir,
        num_workers=args.num_workers,
        policy=GenerationPolicy(retry=RetryPolicy(max_attempts=3, backoff_s=0.0)),
    )
    print(
        "chaos drill complete: "
        f"generated={report.shards_generated} skipped={report.shards_skipped} "
        f"regenerated={report.shards_regenerated} "
        f"quarantined={report.vectors_quarantined} complete={report.complete}"
    )
    return 0 if report.complete else 1


if __name__ == "__main__":
    sys.exit(main())
