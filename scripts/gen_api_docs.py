#!/usr/bin/env python3
"""Generate ``docs/api.md`` from the public docstrings.

The API reference is *maintained from docstrings*: this script walks the
``__all__`` exports of the documented packages, renders each symbol's
signature and docstring to markdown, and writes the result to
``docs/api.md``.  CI regenerates the file and fails when the checked-in copy
has drifted (see ``scripts/check_docs.py``), so the reference can never go
stale relative to the code.

Usage::

    python scripts/gen_api_docs.py            # rewrite docs/api.md
    python scripts/gen_api_docs.py --check    # exit 1 when out of date
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Packages documented in the reference, in page order.
DOCUMENTED_PACKAGES = (
    "repro.core", "repro.nn.kernels", "repro.sim", "repro.workloads",
    "repro.datagen", "repro.serving", "repro.gateway", "repro.eval",
    "repro.obs", "repro.faults", "repro.resilience",
)

HEADER = """\
# API reference

Public API of the prediction framework (`repro.core`), the kernel-dispatch
layer (`repro.nn.kernels`), the simulation engine (`repro.sim`), the
workload layer (`repro.workloads`), the dataset factory (`repro.datagen`),
the serving layer (`repro.serving`), the screening gateway
(`repro.gateway`), the cross-design evaluation harness (`repro.eval`), the
telemetry substrate (`repro.obs`), the fault-injection layer
(`repro.faults`) and the crash-safety toolkit (`repro.resilience`).

**This file is generated** from the package docstrings by
`python scripts/gen_api_docs.py`; edit the docstrings, not this file — CI
fails when the two drift apart.  See `docs/tutorial.md` for a guided tour,
`docs/data-pipeline.md` for the on-disk corpus contract,
`docs/workloads.md` for the scenario library,
`docs/evaluation.md` for the evaluation protocols and baseline workflow,
`docs/observability.md` for metric/span naming and the run-report format,
`docs/serving.md` for the serving stack and gateway front door,
`docs/resilience.md` for the failure model and crash-safety drills,
`docs/kernels.md` for the kernel-dispatch layer and serving precision and
`docs/solvers.md` for the transient solver strategies (full-order vs
reduced-order) and the ROM error gate.
"""


def _signature(obj) -> str:
    """Best-effort signature string (empty for non-callables).

    Default values that repr with memory addresses (functions, lambdas,
    objects) are collapsed to their bare names so the rendered page is
    byte-stable across processes.
    """
    try:
        signature = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""
    return re.sub(r"<(?:function|class|object) ([\w.]+) at 0x[0-9a-f]+>", r"\1", signature)


def _docstring(obj) -> str:
    """Dedented docstring, or a loud placeholder for missing ones."""
    doc = inspect.getdoc(obj)
    return doc.strip() if doc else "*(undocumented)*"


def _public_methods(cls) -> list[tuple[str, object]]:
    """Public methods/properties defined by the class itself (not inherited
    from ``object``), in definition order."""
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            members.append((name, member))
        elif inspect.isfunction(member) or isinstance(member, (classmethod, staticmethod)):
            members.append((name, getattr(cls, name)))
    return members


def _render_symbol(name: str, obj) -> list[str]:
    """Markdown lines documenting one exported symbol."""
    import typing

    lines: list[str] = []
    if typing.get_origin(obj) is not None:
        # A typing alias (e.g. a Callable signature) — document it as such.
        lines.append(f"### `{name}`\n")
        lines.append(f"Type alias: `{obj}`\n")
    elif inspect.isclass(obj):
        lines.append(f"### `{name}{_signature(obj)}`\n")
        lines.append(_docstring(obj) + "\n")
        for method_name, member in _public_methods(obj):
            if isinstance(member, property):
                summary = _docstring(member.fget) if member.fget else "*(undocumented)*"
                lines.append(f"- **`{method_name}`** (property) — {summary.splitlines()[0]}")
            else:
                doc = _docstring(member)
                lines.append(
                    f"- **`{method_name}{_signature(member)}`** — {doc.splitlines()[0]}"
                )
        if _public_methods(obj):
            lines.append("")
    elif callable(obj):
        lines.append(f"### `{name}{_signature(obj)}`\n")
        lines.append(_docstring(obj) + "\n")
    else:
        lines.append(f"### `{name}`\n")
        # Default object reprs embed a memory address; collapse them to the
        # bare type so the rendered page is byte-stable across processes.
        rendered = re.sub(r"<([\w.]+) object at 0x[0-9a-f]+>", r"\1", repr(obj))
        lines.append(f"Constant of type `{type(obj).__name__}`: `{rendered}`\n")
    return lines


def render() -> str:
    """Render the whole reference page."""
    parts = [HEADER]
    for package_name in DOCUMENTED_PACKAGES:
        package = importlib.import_module(package_name)
        parts.append(f"\n## `{package_name}`\n")
        package_doc = _docstring(package)
        parts.append(package_doc + "\n")
        exported = getattr(package, "__all__", None)
        if exported is None:
            raise SystemExit(f"{package_name} has no __all__; cannot enumerate its API")
        for name in exported:
            obj = getattr(package, name)
            parts.extend(_render_symbol(name, obj))
    return "\n".join(parts).rstrip() + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="do not write; exit 1 when docs/api.md is out of date",
    )
    args = parser.parse_args()
    target = REPO_ROOT / "docs" / "api.md"
    rendered = render()
    if args.check:
        current = target.read_text() if target.exists() else ""
        if current != rendered:
            print("docs/api.md is out of date; run: python scripts/gen_api_docs.py")
            return 1
        print("docs/api.md is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target} ({len(rendered.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
