#!/usr/bin/env python3
"""Run the screening gateway: one-shot demo or a TCP front door.

Demo mode seeds a registry with (untrained) checkpoints for the requested
designs, drives a mixed scenario load through a sharded
:class:`~repro.gateway.ScreeningGateway`, and prints the per-scenario
results plus the gateway health snapshot::

    python scripts/run_gateway.py --demo
    python scripts/run_gateway.py --demo --designs small small@10 --shards 2

Serve mode exposes the gateway over newline-delimited JSON on TCP (see
``repro.gateway.server`` for the wire protocol) until interrupted::

    python scripts/run_gateway.py --serve --port 7433 --root checkpoints/
    echo '{"design": "small", "scenario": "power_virus"}' | nc 127.0.0.1 7433

``--obs DIR`` wraps either mode in a ``repro.obs`` telemetry run so the
gateway's counters, gauges, and latency histograms land in
``DIR/run_report.json`` (render it with ``scripts/obs_report.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs
from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, distance_feature
from repro.gateway import GatewayServer, ScreeningGateway
from repro.io import ExperimentRecord, format_table
from repro.serving import PredictorRegistry
from repro.serving.sweep import default_design_factory

DEMO_SCENARIOS = ("power_virus", "resonance_chirp", "didt_step_train", "idle_to_turbo")


def seed_registry(root: Path, design_names: list[str]) -> None:
    """Register an (untrained) checkpoint for every missing demo design.

    Real deployments point ``--root`` at trained checkpoints; the demo only
    needs *working* predictors with the right shapes, so absent designs get
    fresh untrained weights rather than an error.
    """
    registry = PredictorRegistry(root)
    for name in design_names:
        if (root / f"{name}.npz").exists():
            continue
        design = default_design_factory(name)
        model = WorstCaseNoiseNet(
            num_bumps=design.grid.num_bumps,
            config=ModelConfig(
                distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0
            ),
        )
        normalizer = FeatureNormalizer(
            current_scale=0.05, distance_scale=1000.0, noise_scale=0.15
        )
        predictor = NoisePredictor(
            model=model,
            normalizer=normalizer,
            distance=distance_feature(design),
            compression_rate=0.3,
        )
        registry.register(name, predictor)
        print(f"seeded untrained checkpoint for {name!r} under {root}")


def run_demo(gateway: ScreeningGateway, design_names: list[str], num_steps: int) -> None:
    """Screen every (design, scenario) pair and print results + health."""
    items = [
        (scenario, design) for design in design_names for scenario in DEMO_SCENARIOS
    ]
    results = gateway.screen(items, num_steps=num_steps, seed=7)
    records = [
        ExperimentRecord(
            "gateway_demo",
            f"{design}/{scenario}",
            {
                "worst_noise_v": float(result.worst_noise),
                "mean_noise_v": float(result.noise_map.mean()),
            },
        )
        for (scenario, design), result in zip(items, results)
    ]
    print(format_table(records, title="Gateway demo — worst-case noise per scenario"))
    health = gateway.health()
    print(f"\nhealth: accepting={health['accepting']} outstanding={health['outstanding']}")
    for shard_id, shard in sorted(health["shards"].items()):
        print(
            f"  shard {shard_id}: state={shard['state']} restarts={shard['restarts']} "
            f"resident={shard['resident']}"
        )


async def run_server(gateway: ScreeningGateway, host: str, port: int) -> None:
    """Serve the gateway over TCP until interrupted."""
    server = GatewayServer(gateway, host=host, port=port)
    bound_host, bound_port = await server.start()
    print(f"gateway listening on {bound_host}:{bound_port} (Ctrl-C to stop)")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        await gateway.aclose()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--demo", action="store_true", help="run the one-shot demo load")
    mode.add_argument("--serve", action="store_true", help="serve the TCP front door")
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT / "checkpoints",
        help="registry root holding per-design checkpoints (default: checkpoints/)",
    )
    parser.add_argument(
        "--designs", nargs="+", default=["small", "small@10"],
        help="design names served (seeded with untrained weights if absent)",
    )
    parser.add_argument("--shards", type=int, default=2, help="worker shard count")
    parser.add_argument(
        "--queue-limit", type=int, default=256, help="admission queue bound"
    )
    parser.add_argument(
        "--num-steps", type=int, default=200, help="scenario trace length (demo mode)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (serve mode)")
    parser.add_argument(
        "--port", type=int, default=7433, help="bind port, 0 = OS-assigned (serve mode)"
    )
    parser.add_argument(
        "--obs", type=Path, default=None, metavar="DIR",
        help="record a telemetry run report under DIR",
    )
    args = parser.parse_args(argv)

    if args.obs is not None:
        obs.start_run(args.obs, config={"tool": "run_gateway", "shards": args.shards})
    args.root.mkdir(parents=True, exist_ok=True)
    seed_registry(args.root, args.designs)
    gateway = ScreeningGateway(
        args.root, num_shards=args.shards, queue_limit=args.queue_limit
    )
    try:
        if args.demo:
            run_demo(gateway, args.designs, args.num_steps)
        else:
            try:
                asyncio.run(run_server(gateway, args.host, args.port))
            except KeyboardInterrupt:
                print("\nshutting down")
    finally:
        gateway.close()
        if args.obs is not None:
            report = obs.finish_run(extra={"tool": "run_gateway"})
            print(f"telemetry report: {report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
