#!/usr/bin/env python3
"""Documentation gate for CI.

Three checks, any failure exits non-zero:

1. **Intra-repo links** — every relative markdown link in ``README.md``,
   ``DESIGN.md`` and ``docs/*.md`` must point at an existing file or
   directory (external ``http(s)``/``mailto`` links and pure ``#anchors``
   are skipped).
2. **Docstring coverage** — every public symbol of ``repro.serving``,
   ``repro.gateway``, ``repro.datagen``, ``repro.core.training``,
   ``repro.eval``, ``repro.obs``, ``repro.workloads``, ``repro.faults``,
   ``repro.resilience``, ``repro.nn.kernels`` and ``repro.sim``
   (each ``__all__`` export plus the public
   methods/properties of exported classes) must carry a docstring; the
   build fails below the threshold (default 1.0 — the sweep is complete,
   keep it that way).
3. **Generated API reference** — ``docs/api.md`` must match what
   ``scripts/gen_api_docs.py`` renders from the current docstrings.

Usage::

    python scripts/check_docs.py [--coverage-threshold 1.0]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
import typing
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown files whose links are validated.
LINKED_FILES = ("README.md", "DESIGN.md", "docs/api.md", "docs/data-pipeline.md",
                "docs/tutorial.md", "docs/evaluation.md", "docs/workloads.md",
                "docs/observability.md", "docs/serving.md", "docs/resilience.md",
                "docs/kernels.md", "docs/solvers.md")

#: Packages / modules whose public symbols must be documented.
COVERED_PACKAGES = ("repro.serving", "repro.datagen", "repro.core.training",
                    "repro.eval", "repro.workloads", "repro.obs", "repro.gateway",
                    "repro.faults", "repro.resilience", "repro.nn.kernels",
                    "repro.sim")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links() -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors = []
    for relative in LINKED_FILES:
        source = REPO_ROOT / relative
        if not source.exists():
            errors.append(f"{relative}: file missing")
            continue
        for target in _LINK.findall(source.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (source.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{relative}: broken link -> {target}")
    return errors


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def check_docstrings(threshold: float) -> tuple[list[str], float]:
    """Return (missing-symbol names, coverage ratio) over the public API."""
    total = 0
    missing: list[str] = []
    for package_name in COVERED_PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if typing.get_origin(obj) is not None:
                continue  # typing aliases carry no docstring slot
            total += 1
            if not _documented(obj):
                missing.append(f"{package_name}.{name}")
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    if isinstance(member, property):
                        target = member.fget
                    elif inspect.isfunction(member) or isinstance(
                        member, (classmethod, staticmethod)
                    ):
                        target = getattr(obj, member_name)
                    else:
                        continue
                    total += 1
                    if not _documented(target):
                        missing.append(f"{package_name}.{name}.{member_name}")
    coverage = 1.0 if total == 0 else 1.0 - len(missing) / total
    return missing, coverage


def check_api_reference() -> list[str]:
    """Return an error when docs/api.md has drifted from the docstrings."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    rendered = module.render()
    target = REPO_ROOT / "docs" / "api.md"
    current = target.read_text() if target.exists() else ""
    if current != rendered:
        return ["docs/api.md is stale; regenerate with: python scripts/gen_api_docs.py"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coverage-threshold", type=float, default=1.0)
    args = parser.parse_args()

    failures = 0

    link_errors = check_links()
    if link_errors:
        failures += 1
        print("Broken intra-repo links:")
        for error in link_errors:
            print(f"  {error}")
    else:
        print(f"links ok across {len(LINKED_FILES)} files")

    missing, coverage = check_docstrings(args.coverage_threshold)
    print(f"docstring coverage: {coverage:.1%} "
          f"({len(missing)} missing) over {', '.join(COVERED_PACKAGES)}")
    if coverage < args.coverage_threshold:
        failures += 1
        for name in missing:
            print(f"  missing docstring: {name}")

    api_errors = check_api_reference()
    if api_errors:
        failures += 1
        for error in api_errors:
            print(error)
    else:
        print("docs/api.md matches the docstrings")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
