#!/usr/bin/env python3
"""Run a cross-design evaluation campaign and gate it against its baseline.

The tier-2 entry point: generates (or resumes) the campaign corpus, runs the
leave-one-design-out evaluation and the scenario sweep, prints the
paper-style tables, and compares the gated accuracy metrics against the
golden baseline under ``eval/baselines/`` — exiting non-zero on drift, which
is what CI keys off.

Usage::

    python scripts/run_eval.py --budget smoke             # run + gate
    python scripts/run_eval.py --budget smoke --check     # baseline required
    python scripts/run_eval.py --budget smoke --update-baseline
    python scripts/run_eval.py --budget tiny --workdir /tmp/campaign

The campaign workdir (default ``eval/runs/<budget>``) holds the resumable
artefacts — corpus shards, served checkpoints, ``report.json`` and
``sweep.json`` — so an interrupted run picks up where it stopped and a
completed run re-verifies in seconds.  Delete the workdir to start from
scratch.  See ``docs/evaluation.md`` for the protocols and the
baseline-refresh workflow.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs
from repro.eval import BaselineStore, CrossDesignEvaluator, ScenarioSweep, budget, budget_names
from repro.io import format_table


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", default="smoke", choices=budget_names(),
        help="evaluation budget to run (default: smoke)",
    )
    parser.add_argument(
        "--workdir", type=Path, default=None,
        help="campaign workdir (default: eval/runs/<budget>)",
    )
    parser.add_argument(
        "--baselines", type=Path, default=REPO_ROOT / "eval" / "baselines",
        help="golden-baseline directory (default: eval/baselines)",
    )
    parser.add_argument(
        "--num-workers", type=int, default=None,
        help="worker processes for corpus generation and the sweep "
        "(default: auto; 0 = inline)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore existing report/sweep rows and re-evaluate everything "
        "(the corpus is still reused)",
    )
    parser.add_argument(
        "--skip-sweep", action="store_true",
        help="skip the scenario sweep (leave-one-design-out rows only)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured metrics as the new golden baseline",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="require a baseline: fail when it is missing instead of "
        "warning (the CI mode; without this flag a missing baseline is "
        "only a warning)",
    )
    parser.add_argument(
        "--serving-dtype", default="float64", choices=("float64", "float32"),
        help="precision the held-out screening runs at (training is always "
        "float64); float32 is gated against the same golden numbers via the "
        "baseline's per-dtype tolerance bands (default: float64)",
    )
    parser.add_argument(
        "--solver-mode", default="full", choices=("full", "rom"),
        help="transient strategy labelling the campaign corpus: the "
        "full-order companion solver or the gated Krylov reduced-order "
        "model (see docs/solvers.md; default: full)",
    )
    args = parser.parse_args(argv)

    config = budget(args.budget)
    if args.solver_mode != "full":
        config = replace(config, solver_mode=args.solver_mode)
    # A non-default serving dtype or label solver gets its own workdir:
    # report.json rows are measured against one configuration and must not
    # be resumed under another.
    default_dir = config.name
    if args.serving_dtype != "float64":
        default_dir = f"{default_dir}-{args.serving_dtype}"
    if args.solver_mode != "full":
        default_dir = f"{default_dir}-{args.solver_mode}"
    workdir = args.workdir or (REPO_ROOT / "eval" / "runs" / default_dir)

    # The campaign runs inside a telemetry run: every layer's metrics and
    # spans (including pool workers') merge into <workdir>/obs/run_report.json,
    # which scripts/obs_report.py renders (and CI exercises on every push).
    obs.start_run(
        workdir / "obs",
        config={
            "budget": config.name,
            "config_hash": config.config_hash(),
            "serving_dtype": args.serving_dtype,
            "solver_mode": args.solver_mode,
        },
    )
    try:
        evaluator = CrossDesignEvaluator(config, workdir, serving_dtype=args.serving_dtype)
        report = evaluator.run(num_workers=args.num_workers, resume=not args.fresh)
        print(report.table())

        if config.scenarios and not args.skip_sweep:
            sweep = ScenarioSweep(config, workdir)
            records = sweep.run(num_workers=args.num_workers, resume=not args.fresh)
            print(format_table(records, title="scenario sweep"))
    finally:
        telemetry_path = obs.finish_run()
        print(f"telemetry report: {telemetry_path}")

    store = BaselineStore(args.baselines)
    metrics = report.gated_metrics()
    if args.update_baseline:
        if args.serving_dtype != "float64":
            print("ERROR: golden baselines are measured at float64; "
                  "re-run --update-baseline without --serving-dtype")
            return 1
        if args.solver_mode != "full":
            print("ERROR: golden baselines are measured against full-order "
                  "labels; re-run --update-baseline without --solver-mode")
            return 1
        path = store.save(
            config.name, metrics, config.config_hash(), git_rev=report.git_rev
        )
        print(f"baseline refreshed: {path}")
        return 0
    if not store.exists(config.name):
        message = (
            f"no baseline for budget {config.name!r} under {args.baselines}; "
            "create one with --update-baseline"
        )
        if args.check:
            print(f"ERROR: {message}")
            return 1
        print(f"WARNING: {message}")
        return 0
    drift = store.compare(
        config.name, metrics, config.config_hash(), dtype=args.serving_dtype
    )
    print(drift.summary())
    return 0 if drift.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
