#!/usr/bin/env python3
"""Render an observability run report as human-readable tables.

Reads the ``run_report.json`` a telemetry run produced (or, when the merge
has not happened yet, merges the run directory's ``events-*.jsonl`` shards
in memory) and prints the counters, gauges, latency histograms, and a
per-name span roll-up.

Usage::

    python scripts/obs_report.py eval/runs/smoke/obs       # run directory
    python scripts/obs_report.py path/to/run_report.json   # explicit file
    python scripts/obs_report.py eval/runs/smoke/obs --json  # raw payload

Exits non-zero when the target holds neither a report nor any event shards,
so CI can assert that an instrumented run actually produced telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import RUN_REPORT_NAME, build_run_report, load_run_report
from repro.io import ExperimentRecord, format_table


def _load(target: Path) -> dict:
    """Load the report from a file or run directory (merging shards if needed)."""
    if target.is_file():
        return load_run_report(target)
    if (target / RUN_REPORT_NAME).exists():
        return load_run_report(target)
    shards = sorted(target.glob("events-*.jsonl"))
    if not shards:
        raise FileNotFoundError(
            f"{target} holds neither {RUN_REPORT_NAME} nor any events-*.jsonl shards"
        )
    return build_run_report(target)


def _metric_tables(metrics: dict) -> list[str]:
    """Counter/gauge/histogram tables from the report's metric payloads."""
    counters, gauges, histograms = [], [], []
    for name in sorted(metrics):
        payload = metrics[name]
        kind = payload.get("type")
        if kind == "counter":
            counters.append(ExperimentRecord("obs", name, {"count": payload["value"]}))
        elif kind == "gauge":
            gauges.append(
                ExperimentRecord(
                    "obs",
                    name,
                    {
                        "last": payload["last"],
                        "min": payload["min"],
                        "max": payload["max"],
                        "samples": payload["count"],
                    },
                )
            )
        elif kind == "histogram":
            summary = payload.get("summary", {})
            if not summary.get("count"):
                continue
            histograms.append(
                ExperimentRecord(
                    "obs",
                    name,
                    {
                        "count": summary["count"],
                        "mean_ms": summary["mean"] * 1e3,
                        "p50_ms": summary["p50"] * 1e3,
                        "p95_ms": summary["p95"] * 1e3,
                        "p99_ms": summary["p99"] * 1e3,
                        "max_ms": summary["max"] * 1e3,
                    },
                )
            )
    tables = []
    if counters:
        tables.append(format_table(counters, title="counters"))
    if gauges:
        tables.append(format_table(gauges, title="gauges"))
    if histograms:
        tables.append(format_table(histograms, title="latency histograms"))
    return tables


def _span_table(spans_by_shard: dict) -> str | None:
    """Per-name span roll-up (count, total and mean duration) across shards."""
    rollup: dict[str, list[float]] = {}
    for records in spans_by_shard.values():
        for record in records:
            rollup.setdefault(record["name"], []).append(float(record["duration_s"]))
    if not rollup:
        return None
    rows = [
        ExperimentRecord(
            "obs",
            name,
            {
                "count": len(durations),
                "total_s": sum(durations),
                "mean_ms": sum(durations) / len(durations) * 1e3,
            },
        )
        for name, durations in sorted(rollup.items())
    ]
    return format_table(rows, title="spans")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "target", type=Path,
        help="run directory (holding run_report.json or events-*.jsonl) "
        "or an explicit run_report.json path",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw report payload instead of tables",
    )
    args = parser.parse_args(argv)

    try:
        report = _load(args.target)
    except (FileNotFoundError, ValueError) as error:
        print(f"ERROR: {error}")
        return 1

    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0

    print(
        f"run report: config_hash={report.get('config_hash', '')[:12]}… "
        f"git_rev={str(report.get('git_rev', 'unknown'))[:12]} "
        f"shards={','.join(report.get('shards', [])) or '(none)'}"
    )
    for table in _metric_tables(report.get("metrics", {})):
        print(table)
    span_table = _span_table(report.get("spans", {}))
    if span_table:
        print(span_table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
