"""Tests for repro.workloads.specs and the scenario registry/library."""

import pickle

import numpy as np
import pytest

from repro.pdn.designs import DesignSpec, LayerSpec, make_design
from repro.workloads import (
    DEFAULT_MAX_ACTIVITY,
    ScenarioSpec,
    build_scenario_activity,
    build_scenario_trace,
    clamp_activity,
    concat,
    family_defaults,
    mix,
    normalize_scenario,
    overlay,
    resonance_steps,
    scenario_families,
    scenario_spec,
)
from repro.utils.random import ensure_rng

#: Families introduced by the scenario library (beyond the 5 legacy ones).
NEW_FAMILIES = (
    "staggered_dvfs",
    "thermal_throttle",
    "memory_phase",
    "resonance_chirp",
    "didt_step_train",
    "cluster_migration",
    "duty_cycle_sweep",
    "mixed_criticality",
)


def _degenerate_design(num_clusters=0, num_loads=12):
    """A tiny design with controllable cluster/load counts."""
    spec = DesignSpec(
        name=f"degenerate-c{num_clusters}-l{num_loads}",
        die_width=400.0,
        die_height=400.0,
        tile_rows=4,
        tile_cols=4,
        layers=(
            LayerSpec(nx=8, ny=8, sheet_resistance=0.005, name="M1"),
            LayerSpec(nx=4, ny=4, sheet_resistance=0.002, name="M5"),
        ),
        bump_rows=2,
        bump_cols=2,
        num_loads=num_loads,
        total_current=0.5,
        num_clusters=num_clusters,
    )
    return make_design(spec, seed=0)


@pytest.fixture(scope="module")
def zero_cluster_design():
    return _degenerate_design(num_clusters=0)


@pytest.fixture(scope="module")
def single_load_design():
    return _degenerate_design(num_clusters=1, num_loads=1)


class TestScenarioSpec:
    def test_params_are_canonically_sorted(self):
        a = ScenarioSpec("power_virus", params=(("swing", 2.0), ("base", 0.1)))
        b = ScenarioSpec("power_virus", params=(("base", 0.1), ("swing", 2.0)))
        assert a == b
        assert a.config_hash() == b.config_hash()
        assert hash(a) == hash(b)

    def test_explicit_params_change_the_hash(self):
        assert (
            scenario_spec("power_virus").config_hash()
            != scenario_spec("power_virus", swing=1.5).config_hash()
        )

    def test_label_stable_for_defaults_and_hashes_variants(self):
        assert scenario_spec("power_virus").label == "power_virus"
        variant = scenario_spec("power_virus", swing=2.0)
        assert variant.label.startswith("power_virus[")
        assert variant.label == scenario_spec("power_virus", swing=2.0).label

    @pytest.mark.parametrize(
        "spec",
        [
            scenario_spec("steady_state"),
            scenario_spec("duty_cycle_sweep", duty_start=0.2, duty_stop=0.8),
            overlay("power_virus", scenario_spec("single_core_sprint", swing=2.0)),
            concat("steady_state", "idle_to_turbo"),
            mix(["steady_state", "power_virus"], weights=(0.75, 0.25)),
            overlay(concat("steady_state", "power_virus"), "didt_step_train"),
        ],
    )
    def test_dict_and_pickle_round_trip(self, spec):
        import json

        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.config_hash() == spec.config_hash()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_normalize_accepts_names_and_specs(self):
        assert normalize_scenario("power_virus") == ScenarioSpec("power_virus")
        spec = scenario_spec("steady_state", level=0.4)
        assert normalize_scenario(spec) is spec
        with pytest.raises(TypeError):
            normalize_scenario(42)

    def test_rejects_bad_structure(self):
        with pytest.raises(ValueError):
            ScenarioSpec("")
        with pytest.raises(ValueError):
            ScenarioSpec("overlay")  # composite without children
        with pytest.raises(ValueError):
            ScenarioSpec("steady_state", children=(ScenarioSpec("power_virus"),))
        with pytest.raises(ValueError):
            ScenarioSpec("x", params=(("p", 1), ("p", 2)))
        with pytest.raises(TypeError):
            scenario_spec("steady_state", level=object())
        with pytest.raises(ValueError):
            mix(["steady_state", "power_virus"], weights=(1.0,))
        with pytest.raises(ValueError):
            mix(["steady_state"], weights=(-1.0,))

    def test_malformed_composites_from_dict_fail_eagerly(self, tiny_design):
        # from_dict bypasses the overlay/concat/mix constructors, so hand
        # written payloads can carry malformed composite params; both the
        # eager validation and the build path must reject them loudly.
        from repro.workloads import validate_scenario

        children = [{"family": "steady_state"}, {"family": "power_virus"}]
        wrong_count = ScenarioSpec.from_dict(
            {"family": "mix", "params": {"weights": [1.0]}, "children": children}
        )
        zero_sum = ScenarioSpec.from_dict(
            {"family": "mix", "params": {"weights": [0.0, 0.0]}, "children": children}
        )
        typo_key = ScenarioSpec.from_dict(
            {"family": "mix", "params": {"weight": [1.0, 2.0]}, "children": children}
        )
        str_weights = ScenarioSpec.from_dict(
            {"family": "mix", "params": {"weights": "0.5"}, "children": children}
        )
        overlay_params = ScenarioSpec.from_dict(
            {"family": "overlay", "params": {"weights": [1.0, 1.0]}, "children": children}
        )
        for spec, message in (
            (wrong_count, "one weight per child"),
            (zero_sum, "positive sum"),
            (typo_key, "no parameter"),
            (overlay_params, "no parameter"),
            (str_weights, "must be numeric"),
        ):
            with pytest.raises(ValueError, match=message):
                validate_scenario(spec)
            with pytest.raises(ValueError, match=message):
                build_scenario_trace(spec, tiny_design, num_steps=8)


class TestRegistry:
    def test_all_families_registered(self):
        families = scenario_families()
        for name in ("idle_to_turbo", "power_virus", "clock_gating_storm",
                     "single_core_sprint", "steady_state") + NEW_FAMILIES:
            assert name in families
        assert len(families) >= 13

    def test_family_defaults_exposed(self):
        defaults = family_defaults("power_virus")
        assert defaults["base"] == 0.3 and defaults["swing"] == 1.5
        with pytest.raises(ValueError):
            family_defaults("quantum_storm")

    def test_unknown_parameter_rejected_at_build(self, tiny_design):
        with pytest.raises(ValueError, match="no parameter"):
            build_scenario_trace(
                scenario_spec("steady_state", amplitude=3.0), tiny_design, num_steps=8
            )


class TestFamilyBuilders:
    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_new_families_build_valid_traces(self, tiny_design, family):
        trace = build_scenario_trace(family, tiny_design, num_steps=64, seed=2)
        assert trace.num_steps == 64
        assert trace.num_loads == tiny_design.num_loads
        assert trace.currents.min() >= 0

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_new_families_reproducible(self, tiny_design, family):
        a = build_scenario_trace(family, tiny_design, num_steps=40, seed=9)
        b = build_scenario_trace(family, tiny_design, num_steps=40, seed=9)
        np.testing.assert_array_equal(a.currents, b.currents)

    def test_parameters_change_the_trace(self, tiny_design):
        base = build_scenario_trace("power_virus", tiny_design, num_steps=60)
        hot = build_scenario_trace(
            scenario_spec("power_virus", base=0.5), tiny_design, num_steps=60
        )
        assert hot.total_current().min() > base.total_current().min()


class TestDegenerateDesigns:
    def test_every_family_builds_on_degenerate_designs(
        self, zero_cluster_design, single_load_design
    ):
        for design in (zero_cluster_design, single_load_design):
            for family in scenario_families():
                for num_steps in (2, 17):
                    trace = build_scenario_trace(family, design, num_steps=num_steps, seed=1)
                    assert trace.num_steps == num_steps
                    assert trace.num_loads == design.num_loads
                    assert np.isfinite(trace.currents).all()

    def test_zero_cluster_sprint_stays_idle(self, zero_cluster_design):
        # The fixed contract: with no clusters there is no single core to
        # sprint, so the trace is the flat idle baseline — the background
        # loads must not all sprint together.
        sprint = build_scenario_trace(
            "single_core_sprint", zero_cluster_design, num_steps=40, seed=0
        )
        base = family_defaults("single_core_sprint")["base"]
        expected = base * zero_cluster_design.loads.nominal_currents
        np.testing.assert_allclose(sprint.currents, np.tile(expected, (40, 1)))

    def test_sprint_with_clusters_leaves_background_idle(self, tiny_design):
        trace = build_scenario_trace("single_core_sprint", tiny_design, num_steps=40, seed=3)
        background = tiny_design.loads.cluster_id < 0
        assert background.any()
        base = family_defaults("single_core_sprint")["base"]
        np.testing.assert_allclose(
            trace.currents[:, background],
            base * np.tile(tiny_design.loads.nominal_currents[background], (40, 1)),
        )


class TestActivityContract:
    def test_scenarios_respect_max_activity(self, tiny_design):
        # An overlay of hot scenarios would exceed the physical bound
        # without the shared clamp.
        spec = overlay("power_virus", "power_virus", "power_virus")
        trace = build_scenario_trace(spec, tiny_design, num_steps=40, seed=0)
        ceiling = DEFAULT_MAX_ACTIVITY * tiny_design.loads.nominal_currents
        assert np.all(trace.currents <= ceiling[np.newaxis, :] + 1e-12)
        assert np.isclose(trace.currents.max(), ceiling.max())

    def test_custom_max_activity(self, tiny_design):
        trace = build_scenario_trace(
            "power_virus", tiny_design, num_steps=40, max_activity=1.0
        )
        ceiling = 1.0 * tiny_design.loads.nominal_currents
        assert np.all(trace.currents <= ceiling[np.newaxis, :] + 1e-12)

    def test_clamp_activity_bounds(self):
        clamped = clamp_activity(np.array([-1.0, 0.5, 5.0]), 2.0)
        np.testing.assert_allclose(clamped, [0.0, 0.5, 2.0])
        with pytest.raises(ValueError):
            clamp_activity(np.zeros(3), max_activity=0.0)

    def test_resonance_steps_matches_generator(self, tiny_design):
        from repro.workloads import TestVectorGenerator, VectorConfig

        dt = 1e-11
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=16, dt=dt))
        assert generator.resonance_steps == resonance_steps(tiny_design, dt)


class TestComposition:
    def test_overlay_sums_activities(self, tiny_design):
        rng_kwargs = dict(num_steps=24, dt=1e-11)
        spec = overlay("steady_state", "steady_state")
        activity = build_scenario_activity(
            spec, tiny_design, rng=ensure_rng(0), **rng_kwargs
        )
        level = family_defaults("steady_state")["level"]
        np.testing.assert_allclose(activity, 2 * level)

    def test_concat_splits_segments(self, tiny_design):
        spec = concat(
            scenario_spec("steady_state", level=0.2),
            scenario_spec("steady_state", level=1.0),
        )
        activity = build_scenario_activity(
            spec, tiny_design, num_steps=25, dt=1e-11, rng=ensure_rng(0)
        )
        assert activity.shape[0] == 25
        np.testing.assert_allclose(activity[:12], 0.2)
        np.testing.assert_allclose(activity[12:], 1.0)

    def test_concat_rejects_too_short_traces(self, tiny_design):
        spec = concat("steady_state", "steady_state", "steady_state")
        with pytest.raises(ValueError, match="split"):
            build_scenario_activity(spec, tiny_design, num_steps=2, dt=1e-11, rng=ensure_rng(0))

    def test_mix_is_weighted_average(self, tiny_design):
        spec = mix(
            [scenario_spec("steady_state", level=0.0), scenario_spec("steady_state", level=1.0)],
            weights=(1.0, 3.0),
        )
        activity = build_scenario_activity(
            spec, tiny_design, num_steps=10, dt=1e-11, rng=ensure_rng(0)
        )
        np.testing.assert_allclose(activity, 0.75)

    def test_composition_is_deterministic(self, tiny_design):
        spec = overlay(
            "clock_gating_storm",
            concat("single_core_sprint", "mixed_criticality"),
            mix(["power_virus", "cluster_migration"]),
        )
        a = build_scenario_trace(spec, tiny_design, num_steps=48, seed=11)
        b = build_scenario_trace(spec, tiny_design, num_steps=48, seed=11)
        np.testing.assert_array_equal(a.currents, b.currents)
        c = build_scenario_trace(spec, tiny_design, num_steps=48, seed=12)
        assert not np.array_equal(a.currents, c.currents)
