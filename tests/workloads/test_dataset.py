"""Tests for repro.workloads.dataset."""

import numpy as np
import pytest

from repro.workloads.dataset import NoiseDataset, build_dataset, expansion_split


class TestBuildDataset:
    def test_sample_count_and_shapes(self, tiny_design, tiny_dataset):
        assert len(tiny_dataset) == 10
        assert tiny_dataset.tile_shape == tiny_design.tile_grid.shape
        assert tiny_dataset.distance.shape[0] == tiny_design.grid.num_bumps
        sample = tiny_dataset.samples[0]
        assert sample.target.shape == tiny_design.tile_grid.shape
        assert sample.hotspot_map.shape == tiny_design.tile_grid.shape
        assert sample.sim_runtime > 0

    def test_compression_applied_to_features(self, tiny_dataset, tiny_traces):
        sample = tiny_dataset.samples[0]
        assert sample.features.num_steps == int(round(0.4 * tiny_traces[0].num_steps))

    def test_targets_stack(self, tiny_dataset):
        targets = tiny_dataset.targets()
        assert targets.shape == (len(tiny_dataset),) + tiny_dataset.tile_shape
        assert targets.min() >= 0

    def test_hotspots_consistent_with_threshold(self, tiny_dataset):
        for sample in tiny_dataset.samples:
            np.testing.assert_array_equal(
                sample.hotspot_map, sample.target > tiny_dataset.hotspot_threshold
            )

    def test_total_sim_runtime(self, tiny_dataset):
        assert tiny_dataset.total_sim_runtime == pytest.approx(
            sum(s.sim_runtime for s in tiny_dataset.samples)
        )

    def test_empty_traces_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            build_dataset(tiny_design, [])

    def test_mixed_dt_rejected(self, tiny_design, tiny_traces):
        from repro.sim.waveform import CurrentTrace

        other = CurrentTrace(tiny_traces[0].currents, dt=2e-11)
        with pytest.raises(ValueError):
            build_dataset(tiny_design, [tiny_traces[0], other])

    def test_subset_view(self, tiny_dataset):
        subset = tiny_dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.samples[1] is tiny_dataset.samples[2]


class TestDatasetPersistence:
    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        tiny_dataset.save(path)
        loaded = NoiseDataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        assert loaded.design_name == tiny_dataset.design_name
        assert loaded.tile_shape == tiny_dataset.tile_shape
        np.testing.assert_allclose(loaded.distance, tiny_dataset.distance)
        np.testing.assert_allclose(loaded.targets(), tiny_dataset.targets())
        np.testing.assert_allclose(
            loaded.samples[3].features.current_maps,
            tiny_dataset.samples[3].features.current_maps,
        )
        assert loaded.samples[0].name == tiny_dataset.samples[0].name


class TestExpansionSplit:
    def test_partitions_cover_dataset(self, tiny_dataset, tiny_split):
        tiny_split.assert_disjoint(len(tiny_dataset))

    def test_train_fraction_close_to_target(self, tiny_dataset):
        split = expansion_split(tiny_dataset, train_fraction=0.6, seed=1)
        assert abs(len(split.train) - 0.6 * len(tiny_dataset)) <= 2

    def test_validation_test_ratio(self, tiny_dataset):
        split = expansion_split(tiny_dataset, train_fraction=0.5, validation_ratio=0.3, seed=2)
        remaining = len(tiny_dataset) - len(split.train)
        assert len(split.validation) == int(round(0.3 * remaining))

    def test_deterministic_for_seed(self, tiny_dataset):
        a = expansion_split(tiny_dataset, seed=3)
        b = expansion_split(tiny_dataset, seed=3)
        np.testing.assert_array_equal(a.train, b.train)
        np.testing.assert_array_equal(a.test, b.test)

    def test_requires_at_least_three_samples(self, tiny_dataset):
        small = tiny_dataset.subset([0, 1])
        with pytest.raises(ValueError):
            expansion_split(small)

    def test_selected_training_samples_are_diverse(self, tiny_dataset):
        # The expansion strategy picks samples that are far apart: the pairwise
        # minimum distance within the training set should not collapse to zero.
        split = expansion_split(tiny_dataset, train_fraction=0.5, seed=0)
        summaries = tiny_dataset.summary_features()[split.train].reshape(len(split.train), -1)
        distances = np.linalg.norm(summaries[:, None, :] - summaries[None, :, :], axis=-1)
        off_diagonal = distances[~np.eye(len(split.train), dtype=bool)]
        assert off_diagonal.min() > 0


class TestBatchedBuild:
    def test_batched_matches_per_vector(self, tiny_design, tiny_traces, tiny_dataset):
        batched = build_dataset(
            tiny_design, tiny_traces, compression_rate=0.4, sim_batch_size=4
        )
        assert len(batched) == len(tiny_dataset)
        for ours, theirs in zip(batched.samples, tiny_dataset.samples):
            assert ours.name == theirs.name
            np.testing.assert_allclose(ours.target, theirs.target, rtol=1e-12, atol=1e-16)
            np.testing.assert_allclose(
                ours.features.current_maps, theirs.features.current_maps,
                rtol=1e-12, atol=1e-16,
            )
            np.testing.assert_array_equal(ours.hotspot_map, theirs.hotspot_map)

    def test_batched_runtime_is_average(self, tiny_design, tiny_traces):
        batched = build_dataset(
            tiny_design, tiny_traces[:4], compression_rate=0.4, sim_batch_size=4
        )
        runtimes = {sample.sim_runtime for sample in batched.samples}
        assert len(runtimes) == 1


class TestMergeDatasets:
    def test_merge_preserves_order(self, tiny_dataset):
        from repro.workloads.dataset import merge_datasets

        first = tiny_dataset.subset(range(0, 4))
        second = tiny_dataset.subset(range(4, len(tiny_dataset)))
        merged = merge_datasets([first, second])
        assert len(merged) == len(tiny_dataset)
        for ours, theirs in zip(merged.samples, tiny_dataset.samples):
            assert ours is theirs

    def test_merge_rejects_other_design(self, tiny_dataset):
        from dataclasses import replace
        from repro.workloads.dataset import merge_datasets

        other = tiny_dataset.subset(range(2))
        other.design_name = "not-the-same"
        with pytest.raises(ValueError):
            merge_datasets([tiny_dataset, other])

    def test_merge_rejects_mismatched_distance(self, tiny_dataset):
        from repro.workloads.dataset import merge_datasets

        other = tiny_dataset.subset(range(2))
        other.distance = other.distance + 1.0
        with pytest.raises(ValueError):
            merge_datasets([tiny_dataset, other])

    def test_merge_requires_input(self):
        from repro.workloads.dataset import merge_datasets

        with pytest.raises(ValueError):
            merge_datasets([])


class TestUncompressedSave:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "plain.npz"
        tiny_dataset.save(path, compress=False)
        loaded = NoiseDataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        np.testing.assert_array_equal(
            loaded.samples[0].features.current_maps,
            tiny_dataset.samples[0].features.current_maps,
        )
