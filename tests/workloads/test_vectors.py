"""Tests for repro.workloads.vectors."""

import numpy as np
import pytest

from repro.workloads.vectors import TestVectorGenerator, VectorConfig, generate_test_vectors


class TestVectorConfig:
    def test_defaults_valid(self):
        config = VectorConfig()
        assert config.num_steps > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_steps": 1},
            {"dt": 0.0},
            {"baseline_range": (0.5, 0.1)},
            {"peak_range": (0.0, 1.0)},
            {"events_per_cluster": (3, 1)},
            {"toggle_jitter": -0.1},
            {"resonance_probability": 1.5},
            {"idle_probability": -0.2},
            {"max_activity": 0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VectorConfig(**kwargs)


class TestTestVectorGenerator:
    def test_trace_dimensions(self, tiny_design):
        config = VectorConfig(num_steps=50)
        generator = TestVectorGenerator(tiny_design, config)
        trace = generator.generate(seed=0)
        assert trace.num_steps == 50
        assert trace.num_loads == tiny_design.num_loads
        assert trace.dt == config.dt

    def test_currents_nonnegative_and_bounded(self, tiny_design):
        config = VectorConfig(num_steps=100, max_activity=2.0, toggle_jitter=0.3)
        generator = TestVectorGenerator(tiny_design, config)
        trace = generator.generate(seed=1)
        assert trace.currents.min() >= 0.0
        upper = (1 + config.toggle_jitter) * config.max_activity
        per_load_ratio = trace.currents / tiny_design.loads.nominal_currents[np.newaxis, :]
        assert per_load_ratio.max() <= upper + 1e-9

    def test_reproducible_with_seed(self, tiny_design):
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=40))
        a = generator.generate(seed=7)
        b = generator.generate(seed=7)
        np.testing.assert_allclose(a.currents, b.currents)

    def test_different_seeds_differ(self, tiny_design):
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=40))
        a = generator.generate(seed=1)
        b = generator.generate(seed=2)
        assert not np.allclose(a.currents, b.currents)

    def test_suite_generation(self, tiny_design):
        traces = generate_test_vectors(tiny_design, 5, VectorConfig(num_steps=30), seed=0)
        assert len(traces) == 5
        assert traces[0].name.endswith("v0000")
        assert all(trace.num_steps == 30 for trace in traces)

    def test_suite_reproducible(self, tiny_design):
        first = generate_test_vectors(tiny_design, 3, VectorConfig(num_steps=20), seed=4)
        second = generate_test_vectors(tiny_design, 3, VectorConfig(num_steps=20), seed=4)
        for a, b in zip(first, second):
            np.testing.assert_allclose(a.currents, b.currents)

    def test_suite_vectors_are_distinct(self, tiny_design):
        traces = generate_test_vectors(tiny_design, 3, VectorConfig(num_steps=20), seed=4)
        assert not np.allclose(traces[0].currents, traces[1].currents)

    def test_suite_rejects_zero_count(self, tiny_design):
        with pytest.raises(ValueError):
            generate_test_vectors(tiny_design, 0)

    def test_resonance_steps_positive(self, tiny_design):
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=30))
        assert generator.resonance_steps >= 2

    def test_ramp_event_contributes_at_two_steps(self, tiny_design):
        # With num_steps == 2 the ramp window can shrink to one stamp, where
        # linspace(0, peak, 1) used to contribute exactly nothing; the fixed
        # event always reaches its peak.
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=2))
        time_index = np.arange(2)
        for seed in range(64):
            event = generator._event(np.random.default_rng(seed), time_index, "ramp", 1.3)
            assert event.max() == pytest.approx(1.3)

    def test_ramp_event_unchanged_for_regular_lengths(self, tiny_design):
        # The degenerate-ramp fix must not touch ordinary traces: spans >= 2
        # keep the exact linspace profile.
        generator = TestVectorGenerator(tiny_design, VectorConfig(num_steps=40))
        time_index = np.arange(40)
        rng = np.random.default_rng(5)
        reference_rng = np.random.default_rng(5)
        event = generator._event(rng, time_index, "ramp", 1.0)
        reference_rng.uniform(0.1, 0.9)  # the event-center draw
        start = int(reference_rng.uniform(0.05, 0.6) * 40)
        length = max(2, int(reference_rng.uniform(0.1, 0.4) * 40))
        end = min(40, start + length)
        expected = np.zeros(40)
        expected[start:end] = np.linspace(0.0, 1.0, end - start)
        expected[end:] = 1.0
        np.testing.assert_array_equal(event, expected)

    def test_loads_in_same_cluster_correlate(self, tiny_design):
        # Cluster-level activity should make same-cluster loads more
        # correlated than loads from different clusters, on average.
        config = VectorConfig(num_steps=200, toggle_jitter=0.1, idle_probability=0.0)
        generator = TestVectorGenerator(tiny_design, config)
        trace = generator.generate(seed=3)
        cluster_ids = tiny_design.loads.cluster_id
        cluster_members = np.nonzero(cluster_ids == 0)[0]
        other_members = np.nonzero(cluster_ids == 1)[0]
        if len(cluster_members) >= 2 and len(other_members) >= 1:
            same = np.corrcoef(trace.currents[:, cluster_members[0]], trace.currents[:, cluster_members[1]])[0, 1]
            cross = np.corrcoef(trace.currents[:, cluster_members[0]], trace.currents[:, other_members[0]])[0, 1]
            assert same > cross - 0.5  # same-cluster at least comparable
