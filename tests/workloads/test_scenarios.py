"""Tests for repro.workloads.scenarios."""

import numpy as np
import pytest

from repro.workloads.scenarios import build_scenario, scenario_names


class TestScenarioNames:
    def test_expected_scenarios_present(self):
        names = scenario_names()
        assert "power_virus" in names
        assert "idle_to_turbo" in names
        assert "steady_state" in names
        assert len(names) >= 5


class TestBuildScenario:
    @pytest.mark.parametrize("name", ["idle_to_turbo", "power_virus", "clock_gating_storm",
                                      "single_core_sprint", "steady_state"])
    def test_all_scenarios_build(self, tiny_design, name):
        trace = build_scenario(name, tiny_design, num_steps=60)
        assert trace.num_steps == 60
        assert trace.num_loads == tiny_design.num_loads
        assert trace.currents.min() >= 0
        assert name in trace.name

    def test_unknown_scenario_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            build_scenario("quantum_storm", tiny_design)

    def test_power_virus_draws_most_current(self, tiny_design):
        virus = build_scenario("power_virus", tiny_design, num_steps=80)
        steady = build_scenario("steady_state", tiny_design, num_steps=80)
        assert virus.total_current().max() > steady.total_current().max()

    def test_idle_to_turbo_is_monotone_overall(self, tiny_design):
        trace = build_scenario("idle_to_turbo", tiny_design, num_steps=100)
        totals = trace.total_current()
        assert totals[-1] > totals[0]

    def test_steady_state_has_low_variation(self, tiny_design):
        trace = build_scenario("steady_state", tiny_design, num_steps=50)
        totals = trace.total_current()
        assert totals.std() / totals.mean() < 1e-9

    def test_rejects_bad_arguments(self, tiny_design):
        with pytest.raises(ValueError):
            build_scenario("power_virus", tiny_design, num_steps=1)
        with pytest.raises(ValueError):
            build_scenario("power_virus", tiny_design, dt=0.0)

    def test_reproducible_with_seed(self, tiny_design):
        a = build_scenario("single_core_sprint", tiny_design, num_steps=40, seed=5)
        b = build_scenario("single_core_sprint", tiny_design, num_steps=40, seed=5)
        np.testing.assert_allclose(a.currents, b.currents)
