"""Tests for repro.workloads.scenarios."""

import numpy as np
import pytest

from repro.utils.random import ensure_rng
from repro.workloads.scenarios import build_scenario, build_scenario_trace, scenario_names


def _legacy_reference(name, design, num_steps, dt, seed):
    """In-test replica of the pre-registry scenario closures.

    ``build_scenario`` promises bit-identical output for the five legacy
    names; this replica is the frozen pre-refactor math it is held against.
    """
    rng = ensure_rng(seed)
    num_profiles = design.loads.num_clusters + 1
    time_index = np.arange(num_steps)
    resonance = design.spec.package.resonance_frequency(max(design.grid.total_decap, 1e-15))
    res_steps = max(2, int(round(0.5 / (resonance * dt))))
    if name == "idle_to_turbo":
        ramp_start, ramp_end = int(0.2 * num_steps), int(0.5 * num_steps)
        activity = np.full((num_steps, num_profiles), 0.1)
        ramp = np.clip((time_index - ramp_start) / max(ramp_end - ramp_start, 1), 0.0, 1.0)
        activity += 1.1 * ramp[:, np.newaxis]
    elif name == "power_virus":
        period = 2 * res_steps
        gate = ((time_index % period) < period // 2).astype(float)
        activity = np.tile((0.3 + 1.5 * gate)[:, np.newaxis], (1, num_profiles))
    elif name == "clock_gating_storm":
        period = 2 * res_steps
        activity = np.empty((num_steps, num_profiles))
        for profile in range(num_profiles):
            phase = int(rng.integers(0, period))
            gate = (((time_index + phase) % period) < period // 2).astype(float)
            activity[:, profile] = 0.2 + 1.2 * gate
    elif name == "single_core_sprint":
        activity = np.full((num_steps, num_profiles), 0.15)
        sprinting = int(rng.integers(0, max(design.loads.num_clusters, 1)))
        burst_center = 0.55 * num_steps
        burst_width = max(2.0, 1.5 * res_steps)
        activity[:, sprinting] += 1.6 * np.exp(
            -0.5 * ((time_index - burst_center) / burst_width) ** 2
        )
    else:
        assert name == "steady_state"
        activity = np.full((num_steps, num_profiles), 0.6)
    cluster_ids = design.loads.cluster_id
    row = np.where(cluster_ids >= 0, cluster_ids, design.loads.num_clusters)
    per_load = np.clip(activity, 0.0, None)[:, row]
    return per_load * design.loads.nominal_currents[np.newaxis, :]


class TestScenarioNames:
    def test_expected_scenarios_present(self):
        names = scenario_names()
        assert "power_virus" in names
        assert "idle_to_turbo" in names
        assert "steady_state" in names
        assert len(names) >= 5


class TestBuildScenario:
    @pytest.mark.parametrize("name", ["idle_to_turbo", "power_virus", "clock_gating_storm",
                                      "single_core_sprint", "steady_state"])
    def test_all_scenarios_build(self, tiny_design, name):
        trace = build_scenario(name, tiny_design, num_steps=60)
        assert trace.num_steps == 60
        assert trace.num_loads == tiny_design.num_loads
        assert trace.currents.min() >= 0
        assert name in trace.name

    def test_unknown_scenario_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            build_scenario("quantum_storm", tiny_design)

    def test_power_virus_draws_most_current(self, tiny_design):
        virus = build_scenario("power_virus", tiny_design, num_steps=80)
        steady = build_scenario("steady_state", tiny_design, num_steps=80)
        assert virus.total_current().max() > steady.total_current().max()

    def test_idle_to_turbo_is_monotone_overall(self, tiny_design):
        trace = build_scenario("idle_to_turbo", tiny_design, num_steps=100)
        totals = trace.total_current()
        assert totals[-1] > totals[0]

    def test_steady_state_has_low_variation(self, tiny_design):
        trace = build_scenario("steady_state", tiny_design, num_steps=50)
        totals = trace.total_current()
        assert totals.std() / totals.mean() < 1e-9

    def test_rejects_bad_arguments(self, tiny_design):
        with pytest.raises(ValueError):
            build_scenario("power_virus", tiny_design, num_steps=1)
        with pytest.raises(ValueError):
            build_scenario("power_virus", tiny_design, dt=0.0)

    def test_reproducible_with_seed(self, tiny_design):
        a = build_scenario("single_core_sprint", tiny_design, num_steps=40, seed=5)
        b = build_scenario("single_core_sprint", tiny_design, num_steps=40, seed=5)
        np.testing.assert_allclose(a.currents, b.currents)

    @pytest.mark.parametrize("name", ["idle_to_turbo", "power_virus", "clock_gating_storm",
                                      "single_core_sprint", "steady_state"])
    @pytest.mark.parametrize("num_steps,seed", [(60, 0), (101, 7)])
    def test_legacy_scenarios_bit_identical(self, tiny_design, name, num_steps, seed):
        trace = build_scenario(name, tiny_design, num_steps=num_steps, seed=seed)
        reference = _legacy_reference(name, tiny_design, num_steps, 1e-11, seed)
        np.testing.assert_array_equal(trace.currents, reference)
        assert trace.name == f"{tiny_design.name}-{name}"

    def test_shim_matches_build_scenario_trace(self, tiny_design):
        shim = build_scenario("power_virus", tiny_design, num_steps=50, seed=2)
        direct = build_scenario_trace("power_virus", tiny_design, num_steps=50, seed=2)
        np.testing.assert_array_equal(shim.currents, direct.currents)
        assert shim.name == direct.name
