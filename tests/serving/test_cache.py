"""Tests for the serving result cache and content hashing."""

import numpy as np
import pytest

from repro.features.extraction import VectorFeatures, extract_vector_features
from repro.serving import LRUCache, result_cache_key, trace_content_hash
from repro.sim.waveform import CurrentTrace


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no growth
        assert len(cache) == 2
        assert cache.get("a") == 10

    def test_clear(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestContentHash:
    def test_name_does_not_change_hash(self, rng):
        currents = rng.random((20, 6))
        first = CurrentTrace(currents, 1e-11, name="v0")
        renamed = CurrentTrace(currents.copy(), 1e-11, name="v1")
        assert trace_content_hash(first) == trace_content_hash(renamed)

    def test_content_and_dt_change_hash(self, rng):
        currents = rng.random((20, 6))
        base = CurrentTrace(currents, 1e-11)
        different = CurrentTrace(currents + 1e-3, 1e-11)
        slower = CurrentTrace(currents, 2e-11)
        assert trace_content_hash(base) != trace_content_hash(different)
        assert trace_content_hash(base) != trace_content_hash(slower)

    def test_features_hash(self, rng):
        features = VectorFeatures(current_maps=rng.random((5, 4, 4)), name="x")
        renamed = VectorFeatures(current_maps=features.current_maps.copy(), name="y")
        assert trace_content_hash(features) == trace_content_hash(renamed)

    def test_unsupported_payload_rejected(self):
        with pytest.raises(TypeError):
            trace_content_hash(np.zeros((3, 3)))

    def test_cache_key_includes_predictor_fingerprint(
        self, serving_predictor, tiny_design, tiny_traces
    ):
        key = result_cache_key(tiny_traces[0], serving_predictor)
        assert key.startswith(serving_predictor.fingerprint)
        features = extract_vector_features(tiny_traces[0], tiny_design)
        assert result_cache_key(features, serving_predictor) != key
