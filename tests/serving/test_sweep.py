"""Tests for the worker-pool scenario sweep."""

import numpy as np
import pytest

from repro.pdn import small_test_design
from repro.serving import ScenarioJob, default_design_factory, screen_scenarios
from repro.workloads.scenarios import scenario_names


def _tiny_factory(name: str):
    """Top-level (hence picklable) factory matching the test fixtures."""
    return small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)


@pytest.fixture()
def sweep_jobs(tiny_design):
    return [
        ScenarioJob(design=tiny_design.name, scenario=name, num_steps=60)
        for name in scenario_names()[:3]
    ]


class TestScreenScenarios:
    def test_inline_sweep_produces_records(self, registry, sweep_jobs):
        records = screen_scenarios(
            sweep_jobs, registry.root, design_factory=_tiny_factory, num_workers=0
        )
        assert len(records) == len(sweep_jobs)
        for job, record in zip(sweep_jobs, records):
            assert record.experiment == "serving_sweep"
            assert record.label == f"{job.design}:{job.scenario}"
            values = record.values
            assert np.isfinite(values["worst_noise_v"])
            assert 0.0 <= values["hotspot_fraction"] <= 1.0
            assert values["runtime_s"] > 0

    def test_inline_sweep_is_deterministic(self, registry, sweep_jobs):
        first = screen_scenarios(
            sweep_jobs, registry.root, design_factory=_tiny_factory, num_workers=0
        )
        second = screen_scenarios(
            sweep_jobs, registry.root, design_factory=_tiny_factory, num_workers=0
        )
        for a, b in zip(first, second):
            assert a.values["worst_noise_v"] == pytest.approx(b.values["worst_noise_v"])

    def test_empty_job_list(self, registry):
        assert screen_scenarios([], registry.root, num_workers=0) == []

    def test_spec_built_suites_screen_like_named_scenarios(self, registry, tiny_design):
        from repro.workloads import overlay, scenario_spec

        jobs = [
            ScenarioJob(design=tiny_design.name, scenario="power_virus", num_steps=60),
            ScenarioJob(
                design=tiny_design.name,
                scenario=scenario_spec("power_virus", base=0.6),
                num_steps=60,
            ),
            ScenarioJob(
                design=tiny_design.name,
                scenario=overlay("steady_state", "didt_step_train"),
                num_steps=60,
            ),
        ]
        records = screen_scenarios(
            jobs, registry.root, design_factory=_tiny_factory, num_workers=0
        )
        assert len(records) == 3
        for job, record in zip(jobs, records):
            assert record.label == f"{job.design}:{job.scenario_label}"
            assert np.isfinite(record.values["worst_noise_v"])
        # The hotter parameter variant screens hotter than the default.
        assert records[1].values["worst_noise_v"] > records[0].values["worst_noise_v"]

    def test_process_pool_sweep(self, registry, sweep_jobs):
        try:
            records = screen_scenarios(
                sweep_jobs, registry.root, design_factory=_tiny_factory, num_workers=2
            )
        except Exception as error:  # pragma: no cover - sandbox without fork
            pytest.skip(f"process pool unavailable: {error}")
        assert len(records) == len(sweep_jobs)
        inline = screen_scenarios(
            sweep_jobs, registry.root, design_factory=_tiny_factory, num_workers=0
        )
        for pooled, local in zip(records, inline):
            assert pooled.values["worst_noise_v"] == pytest.approx(
                local.values["worst_noise_v"]
            )


class TestDefaultDesignFactory:
    def test_small_names(self):
        design = default_design_factory("small")
        assert design.tile_grid.shape == (8, 8)
        sized = default_design_factory("small@6")
        assert sized.tile_grid.shape == (6, 6)

    def test_reference_names_with_scale(self):
        design = default_design_factory("D1@0.1")
        assert design.name == "D1"
