"""Shared fixtures for the serving-layer tests.

The predictor itself lives in the top-level ``tests/conftest.py``
(``tiny_predictor``) — the serving and inference suites used to build
identical copies; ``serving_predictor`` is kept as a thin alias so the
suite reads naturally.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def serving_predictor(tiny_predictor):
    """The shared untrained predictor, under its serving-suite name."""
    return tiny_predictor


@pytest.fixture()
def registry(tmp_path, tiny_design, serving_predictor):
    """A registry with the tiny design's predictor registered."""
    from repro.serving import PredictorRegistry

    registry = PredictorRegistry(tmp_path / "checkpoints", capacity=4)
    registry.register(tiny_design.name, serving_predictor)
    return registry
