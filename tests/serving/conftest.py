"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, distance_feature


@pytest.fixture(scope="module")
def serving_predictor(tiny_design):
    """An (untrained) predictor for the tiny design; weights don't matter here."""
    model = WorstCaseNoiseNet(
        num_bumps=tiny_design.grid.num_bumps,
        config=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(tiny_design),
        compression_rate=0.4,
    )


@pytest.fixture()
def registry(tmp_path, tiny_design, serving_predictor):
    """A registry with the tiny design's predictor registered."""
    from repro.serving import PredictorRegistry

    registry = PredictorRegistry(tmp_path / "checkpoints", capacity=4)
    registry.register(tiny_design.name, serving_predictor)
    return registry
