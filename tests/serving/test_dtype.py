"""Serving-layer precision seams: registry dtype override, cache separation.

The result cache keys on the predictor fingerprint, which folds in the
serving dtype — these tests pin that a float32 deployment can never be
served a cached float64 answer (or vice versa), and that a registry-wide
dtype override re-serves existing float64 checkpoints at low precision
without touching them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import NoisePredictor
from repro.features.extraction import extract_vector_features
from repro.serving import PredictorRegistry
from repro.serving.cache import result_cache_key


@pytest.fixture()
def tiny_features(tiny_design, tiny_traces):
    return extract_vector_features(tiny_traces[0], tiny_design, compression_rate=0.3)


def test_registry_dtype_override_serves_float32(tmp_path, tiny_design, serving_predictor):
    # Register a plain float64 predictor, then open the same store with a
    # registry-wide float32 override: the checkpoint is untouched, the
    # served predictor is low-precision.
    float64_registry = PredictorRegistry(tmp_path / "checkpoints", capacity=2)
    float64_registry.register(tiny_design.name, serving_predictor)

    float32_registry = PredictorRegistry(
        tmp_path / "checkpoints", capacity=2, dtype="float32"
    )
    served = float32_registry.get(tiny_design.name)
    assert served.serving_dtype == "float32"
    for _, parameter in served.model.named_parameters():
        assert parameter.data.dtype == np.float32

    # The original registry still serves float64 from the same files.
    assert float64_registry.get(tiny_design.name).serving_dtype == "float64"


def test_registry_rejects_unsupported_dtype(tmp_path):
    with pytest.raises(TypeError):
        PredictorRegistry(tmp_path / "checkpoints", dtype="int8")


def test_result_cache_key_separates_dtypes(
    tmp_path, tiny_design, serving_predictor, tiny_features
):
    registry = PredictorRegistry(tmp_path / "checkpoints", capacity=2)
    registry.register(tiny_design.name, serving_predictor)
    path = registry.checkpoint_path(tiny_design.name)
    predictor64 = NoisePredictor.load(path)
    predictor32 = NoisePredictor.load(path, dtype="float32")

    key64 = result_cache_key(tiny_features, predictor64)
    key32 = result_cache_key(tiny_features, predictor32)
    # Same checkpoint, same vector — different serving precision, different key.
    assert key64 != key32
    # The vector-content half of the key is identical; only the fingerprint
    # (which folds in the serving dtype) differs.
    assert key64.rsplit(":", 1)[1] == key32.rsplit(":", 1)[1]
