"""Batched forward path: agreement with the per-vector path on every design."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import normalized_distance_feature
from repro.nn import no_grad
from repro.pdn import reference_design, reference_design_names

_SMALL_CONFIG = ModelConfig(
    distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0
)


@pytest.mark.parametrize("design_name", reference_design_names())
def test_batched_matches_sequential_on_reference_designs(design_name):
    """Batched and one-at-a-time predictions agree on every reference config."""
    design = reference_design(design_name, scale=0.1, seed=0)
    distance = normalized_distance_feature(design)
    model = WorstCaseNoiseNet(num_bumps=design.grid.num_bumps, config=_SMALL_CONFIG)
    rng = np.random.default_rng(7)
    height, width = design.tile_grid.shape
    batch = [rng.random((int(rng.integers(4, 10)), height, width)) for _ in range(5)]

    with no_grad():
        sequential = np.stack([model(maps, distance).numpy() for maps in batch])
        batched = model.forward_batch(batch, distance).numpy()

    assert batched.shape == (len(batch), height, width)
    np.testing.assert_allclose(batched, sequential, rtol=1e-10, atol=1e-10)


def test_uniform_batch_array_input():
    """A dense (N, T, m, n) array takes the fully vectorised reduction path."""
    design = reference_design("D1", scale=0.1, seed=0)
    distance = normalized_distance_feature(design)
    model = WorstCaseNoiseNet(num_bumps=design.grid.num_bumps, config=_SMALL_CONFIG)
    rng = np.random.default_rng(11)
    height, width = design.tile_grid.shape
    dense = rng.random((6, 8, height, width))

    with no_grad():
        sequential = np.stack([model(dense[i], distance).numpy() for i in range(6)])
        batched = model.forward_batch(dense, distance).numpy()

    np.testing.assert_allclose(batched, sequential, rtol=1e-10, atol=1e-10)


class TestBatchValidation:
    @pytest.fixture(scope="class")
    def model(self):
        return WorstCaseNoiseNet(num_bumps=4, config=_SMALL_CONFIG)

    def test_empty_batch_rejected(self, model, rng):
        with pytest.raises(ValueError, match="empty"):
            model.forward_batch([], rng.random((4, 8, 8)))

    def test_wrong_rank_rejected(self, model, rng):
        with pytest.raises(ValueError):
            model.forward_batch(rng.random((3, 8, 8)), rng.random((4, 8, 8)))

    def test_mismatched_tile_shapes_rejected(self, model, rng):
        batch = [rng.random((5, 8, 8)), rng.random((5, 6, 6))]
        with pytest.raises(ValueError, match="tile shape"):
            model.forward_batch(batch, rng.random((4, 8, 8)))


class TestPredictorBatching:
    def test_predict_batch_matches_predict_features(self, serving_predictor, tiny_dataset):
        features = [sample.features for sample in tiny_dataset.samples]
        batched = serving_predictor.predict_batch(features)
        assert len(batched) == len(features)
        for item, result in zip(features, batched):
            single = serving_predictor.predict_features(item)
            np.testing.assert_allclose(
                result.noise_map, single.noise_map, rtol=1e-10, atol=1e-12
            )
            assert result.name == item.name

    def test_predict_dataset_batched_vs_per_vector(self, serving_predictor, tiny_dataset):
        maps_batched, runtimes_batched = serving_predictor.predict_dataset(tiny_dataset)
        maps_single, _ = serving_predictor.predict_dataset(tiny_dataset, max_batch=1)
        assert maps_batched.shape == (len(tiny_dataset),) + tiny_dataset.tile_shape
        assert runtimes_batched.shape == (len(tiny_dataset),)
        assert np.all(runtimes_batched > 0)
        np.testing.assert_allclose(maps_batched, maps_single, rtol=1e-10, atol=1e-12)

    def test_predict_dataset_chunking(self, serving_predictor, tiny_dataset):
        maps_full, _ = serving_predictor.predict_dataset(tiny_dataset)
        maps_chunked, _ = serving_predictor.predict_dataset(tiny_dataset, max_batch=3)
        np.testing.assert_allclose(maps_chunked, maps_full, rtol=1e-10, atol=1e-12)

    def test_predict_dataset_empty_selection(self, serving_predictor, tiny_dataset):
        maps, runtimes = serving_predictor.predict_dataset(tiny_dataset, indices=[])
        assert maps.shape == (0,) + tiny_dataset.tile_shape
        assert runtimes.shape == (0,)

    def test_fingerprint_tracks_weight_updates(self, serving_predictor):
        first = serving_predictor.fingerprint
        assert first == serving_predictor.fingerprint  # memoised and stable
        parameter = serving_predictor.model.parameters()[0]
        original = parameter.data
        try:
            # Weight updates rebind parameter.data (as optimisers and
            # load_state_dict do); the fingerprint must follow automatically.
            parameter.data = parameter.data + 1.0
            assert serving_predictor.fingerprint != first
        finally:
            parameter.data = original
        assert serving_predictor.fingerprint == first

    def test_batched_path_not_stale_after_weight_update(
        self, serving_predictor, tiny_dataset
    ):
        """Reduced-distance memo must not survive an in-place retrain."""
        features = [sample.features for sample in tiny_dataset.samples[:3]]
        serving_predictor.predict_batch(features)  # populate the memo
        parameter = serving_predictor.model.parameters()[0]
        original = parameter.data
        try:
            parameter.data = parameter.data * 1.5
            batched = serving_predictor.predict_batch(features)
            for item, result in zip(features, batched):
                single = serving_predictor.predict_features(item)
                np.testing.assert_allclose(
                    result.noise_map, single.noise_map, rtol=1e-10, atol=1e-12
                )
        finally:
            parameter.data = original
