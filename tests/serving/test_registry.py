"""Tests for the per-design predictor registry."""

import threading

import numpy as np
import pytest

from repro.serving import PredictorRegistry


class TestPredictorRegistry:
    def test_register_writes_checkpoint(self, registry, tiny_design):
        path = registry.checkpoint_path(tiny_design.name)
        assert path.exists()
        assert tiny_design.name in registry.available()
        assert tiny_design.name in registry

    def test_get_returns_resident_predictor(self, registry, tiny_design, serving_predictor):
        assert registry.get(tiny_design.name) is serving_predictor
        assert registry.stats.hits == 1
        assert registry.stats.loads == 0

    def test_get_loads_from_disk_after_eviction(
        self, registry, tiny_design, serving_predictor, tiny_traces
    ):
        original = serving_predictor.predict_trace(tiny_traces[0], tiny_design)
        assert registry.evict(tiny_design.name)
        assert registry.loaded() == ()
        reloaded = registry.get(tiny_design.name)
        assert reloaded is not serving_predictor
        assert registry.stats.loads == 1
        result = reloaded.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(result.noise_map, original.noise_map, rtol=1e-10)
        assert reloaded.fingerprint == serving_predictor.fingerprint

    def test_loaded_models_are_frozen(self, registry, tiny_design):
        registry.evict(tiny_design.name)
        predictor = registry.get(tiny_design.name)
        assert all(not p.requires_grad for p in predictor.model.parameters())
        assert not predictor.model.training

    def test_capacity_eviction(self, tmp_path, tiny_design, serving_predictor):
        registry = PredictorRegistry(tmp_path / "small", capacity=2)
        for name in ("alpha", "beta", "gamma"):
            registry.register(name, serving_predictor)
        assert len(registry.loaded()) == 2
        assert registry.loaded() == ("beta", "gamma")
        assert registry.stats.evictions == 1
        # alpha's checkpoint survives on disk and can be reloaded.
        assert "alpha" in registry.available()
        registry.get("alpha")
        assert "alpha" in registry.loaded()

    def test_unknown_design_raises(self, registry):
        with pytest.raises(KeyError, match="no predictor registered"):
            registry.get("nonexistent")

    def test_invalid_design_name_rejected(self, registry):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ValueError):
                registry.checkpoint_path(bad)

    def test_evict_missing_returns_false(self, registry):
        assert not registry.evict("nonexistent")

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PredictorRegistry(tmp_path, capacity=0)

    def test_legacy_sidecar_checkpoint_served_through_registry(
        self, tmp_path, tiny_design, serving_predictor, tiny_traces, write_legacy_checkpoint
    ):
        # A registry root holding an old-layout checkpoint (weights + a
        # "<name>.npz.distance.npz" sidecar) must list exactly one design and
        # serve it transparently.
        registry = PredictorRegistry(tmp_path / "legacy-root", capacity=2)
        write_legacy_checkpoint(
            serving_predictor, registry.checkpoint_path(tiny_design.name), with_sidecar=True
        )
        assert registry.available() == (tiny_design.name,)
        loaded = registry.get(tiny_design.name)
        expected = serving_predictor.predict_trace(tiny_traces[0], tiny_design)
        served = loaded.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(served.noise_map, expected.noise_map, rtol=1e-10)


class TestRegistryConcurrency:
    """LRU eviction under concurrent access must stay consistent."""

    NAMES = ("alpha", "beta", "gamma", "delta")

    def _populated_registry(self, root, serving_predictor, capacity):
        registry = PredictorRegistry(root, capacity=capacity)
        for name in self.NAMES:
            registry.register(name, serving_predictor)
        registry.clear()
        return registry

    def test_concurrent_gets_with_lru_thrashing(self, tmp_path, serving_predictor):
        # Capacity 2 with 4 designs: every thread's access pattern forces
        # loads and evictions to interleave.  The registry must never raise,
        # never exceed capacity, and always hand back a predictor whose
        # fingerprint matches the registered checkpoint.
        registry = self._populated_registry(tmp_path / "thrash", serving_predictor, capacity=2)
        expected = serving_predictor.fingerprint
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(offset: int) -> None:
            try:
                barrier.wait(timeout=10)
                for step in range(25):
                    name = self.NAMES[(offset + step) % len(self.NAMES)]
                    predictor = registry.get(name)
                    assert predictor.fingerprint == expected
                    if step % 7 == 0:
                        registry.evict(name)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert len(registry.loaded()) <= 2
        assert registry.stats.loads + registry.stats.hits > 0
        # Every design is still loadable afterwards (no checkpoint was lost).
        for name in self.NAMES:
            assert registry.get(name).fingerprint == expected

    def test_concurrent_register_and_get(self, tmp_path, serving_predictor):
        # Hot-swapping a design while readers fetch it: readers must always
        # observe a fully-constructed predictor (old or new, never torn).
        registry = self._populated_registry(tmp_path / "swap", serving_predictor, capacity=3)
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                while not stop.is_set():
                    registry.register("alpha", serving_predictor, persist=False)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def reader() -> None:
            try:
                for _ in range(50):
                    predictor = registry.get("alpha")
                    assert predictor.model.num_bumps == serving_predictor.model.num_bumps
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        writer_thread = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=30)
        stop.set()
        writer_thread.join(timeout=30)
        assert not errors, errors
