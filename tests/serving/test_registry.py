"""Tests for the per-design predictor registry."""

import numpy as np
import pytest

from repro.serving import PredictorRegistry


class TestPredictorRegistry:
    def test_register_writes_checkpoint(self, registry, tiny_design):
        path = registry.checkpoint_path(tiny_design.name)
        assert path.exists()
        assert tiny_design.name in registry.available()
        assert tiny_design.name in registry

    def test_get_returns_resident_predictor(self, registry, tiny_design, serving_predictor):
        assert registry.get(tiny_design.name) is serving_predictor
        assert registry.stats.hits == 1
        assert registry.stats.loads == 0

    def test_get_loads_from_disk_after_eviction(
        self, registry, tiny_design, serving_predictor, tiny_traces
    ):
        original = serving_predictor.predict_trace(tiny_traces[0], tiny_design)
        assert registry.evict(tiny_design.name)
        assert registry.loaded() == ()
        reloaded = registry.get(tiny_design.name)
        assert reloaded is not serving_predictor
        assert registry.stats.loads == 1
        result = reloaded.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(result.noise_map, original.noise_map, rtol=1e-10)
        assert reloaded.fingerprint == serving_predictor.fingerprint

    def test_loaded_models_are_frozen(self, registry, tiny_design):
        registry.evict(tiny_design.name)
        predictor = registry.get(tiny_design.name)
        assert all(not p.requires_grad for p in predictor.model.parameters())
        assert not predictor.model.training

    def test_capacity_eviction(self, tmp_path, tiny_design, serving_predictor):
        registry = PredictorRegistry(tmp_path / "small", capacity=2)
        for name in ("alpha", "beta", "gamma"):
            registry.register(name, serving_predictor)
        assert len(registry.loaded()) == 2
        assert registry.loaded() == ("beta", "gamma")
        assert registry.stats.evictions == 1
        # alpha's checkpoint survives on disk and can be reloaded.
        assert "alpha" in registry.available()
        registry.get("alpha")
        assert "alpha" in registry.loaded()

    def test_unknown_design_raises(self, registry):
        with pytest.raises(KeyError, match="no predictor registered"):
            registry.get("nonexistent")

    def test_invalid_design_name_rejected(self, registry):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ValueError):
                registry.checkpoint_path(bad)

    def test_evict_missing_returns_false(self, registry):
        assert not registry.evict("nonexistent")

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PredictorRegistry(tmp_path, capacity=0)
