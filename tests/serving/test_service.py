"""Tests for the micro-batching screening service."""

import dataclasses

import numpy as np
import pytest

from repro.features.extraction import VectorFeatures, extract_vector_features
from repro.pdn.designs import make_design
from repro.serving import ScreeningService


@pytest.fixture()
def service(registry):
    with ScreeningService(registry, max_batch=8, max_wait=5e-3) as svc:
        yield svc


class TestScreeningCorrectness:
    def test_screen_matches_sequential_predictions(
        self, service, serving_predictor, tiny_design, tiny_traces
    ):
        results = service.screen(tiny_traces, tiny_design)
        assert len(results) == len(tiny_traces)
        for trace, result in zip(tiny_traces, results):
            sequential = serving_predictor.predict_trace(trace, tiny_design)
            np.testing.assert_allclose(
                result.noise_map, sequential.noise_map, rtol=1e-10, atol=1e-12
            )

    def test_requests_are_micro_batched(self, service, tiny_design, tiny_traces):
        service.screen(tiny_traces, tiny_design)
        stats = service.stats
        assert stats.batched_vectors == len(tiny_traces)
        assert stats.model_batches < len(tiny_traces)
        assert stats.max_batch_observed > 1

    def test_features_payload_with_design_name(
        self, service, serving_predictor, tiny_design, tiny_traces
    ):
        features = extract_vector_features(
            tiny_traces[0], tiny_design, compression_rate=serving_predictor.compression_rate
        )
        result = service.submit(features, tiny_design.name)
        sequential = serving_predictor.predict_features(features)
        np.testing.assert_allclose(
            result.noise_map, sequential.noise_map, rtol=1e-10, atol=1e-12
        )


class TestResultCache:
    def test_cache_hits_return_identical_maps_without_rerun(
        self, service, tiny_design, tiny_traces
    ):
        first = service.screen(tiny_traces, tiny_design)
        vectors_after_first = service.stats.batched_vectors
        second = service.screen(tiny_traces, tiny_design)
        # No additional forward passes ran ...
        assert service.stats.batched_vectors == vectors_after_first
        assert service.stats.cache_hits == len(tiny_traces)
        # ... and the cached maps are bit-identical.
        for a, b in zip(first, second):
            assert np.array_equal(a.noise_map, b.noise_map)

    def test_renamed_identical_trace_hits_cache(self, service, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        service.submit(trace, tiny_design)
        renamed = dataclasses.replace(trace, name="release-candidate-7")
        result = service.submit(renamed, tiny_design)
        assert service.stats.cache_hits == 1
        # The hit reports the submitter's vector name, not the twin's.
        assert result.name == "release-candidate-7"

    def test_caller_mutation_cannot_poison_cache(self, service, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        original = service.submit(trace, tiny_design)
        reference = original.noise_map.copy()
        original.noise_map *= 1e3  # caller-side unit conversion
        hit = service.submit(dataclasses.replace(trace, name="again"), tiny_design)
        np.testing.assert_array_equal(hit.noise_map, reference)
        hit.noise_map[:] = -1.0  # mutating a hit must not touch the cache either
        second_hit = service.submit(dataclasses.replace(trace, name="thrice"), tiny_design)
        np.testing.assert_array_equal(second_hit.noise_map, reference)

    def test_concurrent_duplicates_coalesce(self, registry, tiny_design, tiny_traces):
        with ScreeningService(registry, max_batch=8, max_wait=0.25) as svc:
            twin = dataclasses.replace(tiny_traces[0], name="twin")
            first = svc.submit_async(tiny_traces[0], tiny_design)
            second = svc.submit_async(twin, tiny_design)
            assert svc.stats.coalesced == 1
            primary, follower = first.result(), second.result()
            # One forward pass, but each caller owns a private result.
            assert svc.stats.batched_vectors == 1
            np.testing.assert_array_equal(primary.noise_map, follower.noise_map)
            assert follower.noise_map is not primary.noise_map
            assert follower.name == "twin"

    def test_cancelled_future_does_not_poison_group(
        self, registry, tiny_design, tiny_traces
    ):
        with ScreeningService(registry, max_batch=8, max_wait=0.2) as svc:
            futures = [svc.submit_async(trace, tiny_design) for trace in tiny_traces[:3]]
            futures[0].cancel()  # caller gave up while the batch was filling
            survivors = [future.result(timeout=10) for future in futures[1:]]
        assert len(survivors) == 2
        assert svc.stats.failures == 0

    def test_new_submitter_not_coalesced_onto_cancelled_future(
        self, registry, tiny_design, tiny_traces
    ):
        with ScreeningService(registry, max_batch=8, max_wait=0.2) as svc:
            doomed = svc.submit_async(tiny_traces[0], tiny_design)
            doomed.cancel()
            # An innocent later submitter of the same vector must get a fresh
            # request, not inherit the cancellation.
            result = svc.submit(tiny_traces[0], tiny_design)
        assert result.noise_map.shape == tiny_design.tile_grid.shape


class TestServiceLifecycleAndErrors:
    def test_unknown_design_raises_synchronously(self, service, tiny_traces, tiny_design):
        features = extract_vector_features(tiny_traces[0], tiny_design)
        with pytest.raises(KeyError):
            service.submit(features, "not-registered")

    def test_raw_trace_with_name_only_rejected(self, service, tiny_design, tiny_traces):
        with pytest.raises(TypeError):
            service.submit(tiny_traces[0], tiny_design.name)

    def test_worker_errors_propagate_to_caller(self, service, tiny_design, rng):
        bad = VectorFeatures(current_maps=rng.random((4, 5, 5)), name="wrong-shape")
        with pytest.raises(Exception):
            service.submit(bad, tiny_design.name)
        assert service.stats.failures == 1

    def test_submit_after_close_rejected(self, registry, tiny_design, tiny_traces):
        service = ScreeningService(registry, max_batch=4)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(tiny_traces[0], tiny_design)
        service.close()  # idempotent

    def test_latencies_recorded(self, service, tiny_design, tiny_traces):
        service.screen(tiny_traces[:4], tiny_design)
        latencies = service.latencies()
        assert len(latencies) == 4
        assert all(value >= 0 for value in latencies)


class TestMultiDesignGrouping:
    def test_batches_group_by_design(
        self, registry, tiny_design, serving_predictor, tiny_traces
    ):
        sibling_spec = dataclasses.replace(tiny_design.spec, name="unit-test-b")
        sibling = make_design(sibling_spec, seed=0)
        registry.register(sibling.name, serving_predictor)

        with ScreeningService(registry, max_batch=16, max_wait=0.2) as svc:
            futures = []
            for trace in tiny_traces[:3]:
                futures.append(svc.submit_async(trace, tiny_design))
            for trace in tiny_traces[3:6]:
                futures.append(svc.submit_async(trace, sibling))
            results = [future.result() for future in futures]
        assert len(results) == 6
        assert svc.stats.batched_vectors == 6
        # The six requests shared one drain but ran as two per-design groups.
        assert svc.stats.model_batches >= 2
