"""Tests for the micro-batching screening service."""

import dataclasses

import numpy as np
import pytest

from repro.features.extraction import VectorFeatures, extract_vector_features
from repro.pdn.designs import make_design
from repro.serving import ScreeningService, ServiceClosed


@pytest.fixture()
def service(registry):
    with ScreeningService(registry, max_batch=8, max_wait=5e-3) as svc:
        yield svc


class TestScreeningCorrectness:
    def test_screen_matches_sequential_predictions(
        self, service, serving_predictor, tiny_design, tiny_traces
    ):
        results = service.screen(tiny_traces, tiny_design)
        assert len(results) == len(tiny_traces)
        for trace, result in zip(tiny_traces, results):
            sequential = serving_predictor.predict_trace(trace, tiny_design)
            np.testing.assert_allclose(
                result.noise_map, sequential.noise_map, rtol=1e-10, atol=1e-12
            )

    def test_requests_are_micro_batched(
        self, registry, serving_predictor, make_gated_predictor, tiny_design, tiny_traces
    ):
        # A gated blocker pins the worker mid-batch while the backlog queues
        # up, so the batch split is exact rather than a max_wait race.
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        with ScreeningService(registry, max_batch=8, max_wait=1e-3) as svc:
            blocker = svc.submit_async(tiny_traces[0], tiny_design)
            assert gated.started.wait(5)
            futures = [svc.submit_async(trace, tiny_design) for trace in tiny_traces[1:]]
            gated.release.set()
            blocker.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
        stats = svc.stats
        assert stats.batched_vectors == len(tiny_traces)
        # blocker alone, then the 9 queued requests as ceil(9/8) batches.
        assert stats.model_batches == 3
        assert stats.max_batch_observed == 8

    def test_features_payload_with_design_name(
        self, service, serving_predictor, tiny_design, tiny_traces
    ):
        features = extract_vector_features(
            tiny_traces[0], tiny_design, compression_rate=serving_predictor.compression_rate
        )
        result = service.submit(features, tiny_design.name)
        sequential = serving_predictor.predict_features(features)
        np.testing.assert_allclose(
            result.noise_map, sequential.noise_map, rtol=1e-10, atol=1e-12
        )


class TestResultCache:
    def test_cache_hits_return_identical_maps_without_rerun(
        self, service, tiny_design, tiny_traces
    ):
        first = service.screen(tiny_traces, tiny_design)
        vectors_after_first = service.stats.batched_vectors
        second = service.screen(tiny_traces, tiny_design)
        # No additional forward passes ran ...
        assert service.stats.batched_vectors == vectors_after_first
        assert service.stats.cache_hits == len(tiny_traces)
        # ... and the cached maps are bit-identical.
        for a, b in zip(first, second):
            assert np.array_equal(a.noise_map, b.noise_map)

    def test_renamed_identical_trace_hits_cache(self, service, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        service.submit(trace, tiny_design)
        renamed = dataclasses.replace(trace, name="release-candidate-7")
        result = service.submit(renamed, tiny_design)
        assert service.stats.cache_hits == 1
        # The hit reports the submitter's vector name, not the twin's.
        assert result.name == "release-candidate-7"

    def test_caller_mutation_cannot_poison_cache(self, service, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        original = service.submit(trace, tiny_design)
        reference = original.noise_map.copy()
        original.noise_map *= 1e3  # caller-side unit conversion
        hit = service.submit(dataclasses.replace(trace, name="again"), tiny_design)
        np.testing.assert_array_equal(hit.noise_map, reference)
        hit.noise_map[:] = -1.0  # mutating a hit must not touch the cache either
        second_hit = service.submit(dataclasses.replace(trace, name="thrice"), tiny_design)
        np.testing.assert_array_equal(second_hit.noise_map, reference)

    def test_concurrent_duplicates_coalesce(
        self, registry, serving_predictor, make_gated_predictor, tiny_design, tiny_traces
    ):
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        with ScreeningService(registry, max_batch=8, max_wait=1e-3) as svc:
            twin = dataclasses.replace(tiny_traces[0], name="twin")
            first = svc.submit_async(tiny_traces[0], tiny_design)
            assert gated.started.wait(5)  # the primary is provably in flight
            second = svc.submit_async(twin, tiny_design)
            assert svc.stats.coalesced == 1
            gated.release.set()
            primary, follower = first.result(timeout=10), second.result(timeout=10)
            # One forward pass, but each caller owns a private result.
            assert svc.stats.batched_vectors == 1
            np.testing.assert_array_equal(primary.noise_map, follower.noise_map)
            assert follower.noise_map is not primary.noise_map
            assert follower.name == "twin"

    def test_cancelled_future_does_not_poison_group(
        self, registry, serving_predictor, make_gated_predictor, tiny_design, tiny_traces
    ):
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        with ScreeningService(registry, max_batch=8, max_wait=1e-3) as svc:
            blocker = svc.submit_async(tiny_traces[3], tiny_design)
            assert gated.started.wait(5)
            # These three queue behind the blocked batch and land together.
            futures = [svc.submit_async(trace, tiny_design) for trace in tiny_traces[:3]]
            futures[0].cancel()  # caller gave up while the batch was filling
            gated.release.set()
            blocker.result(timeout=10)
            survivors = [future.result(timeout=10) for future in futures[1:]]
        assert len(survivors) == 2
        assert svc.stats.failures == 0

    def test_new_submitter_not_coalesced_onto_cancelled_future(
        self, registry, serving_predictor, make_gated_predictor, tiny_design, tiny_traces
    ):
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        with ScreeningService(registry, max_batch=8, max_wait=1e-3) as svc:
            blocker = svc.submit_async(tiny_traces[1], tiny_design)
            assert gated.started.wait(5)
            doomed = svc.submit_async(tiny_traces[0], tiny_design)
            doomed.cancel()
            # An innocent later submitter of the same vector must get a fresh
            # request, not inherit the cancellation.
            fresh = svc.submit_async(tiny_traces[0], tiny_design)
            assert svc.stats.coalesced == 0
            gated.release.set()
            blocker.result(timeout=10)
            result = fresh.result(timeout=10)
        assert result.noise_map.shape == tiny_design.tile_grid.shape


class TestCloseSemantics:
    """close() resolves — never abandons — every accepted future (PR 7)."""

    def test_submit_after_close_raises_typed_service_closed(
        self, registry, tiny_design, tiny_traces
    ):
        service = ScreeningService(registry, max_batch=4)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(tiny_traces[0], tiny_design)

    def test_close_without_drain_resolves_queued_futures(
        self, registry, serving_predictor, make_gated_predictor, wait_for,
        tiny_design, tiny_traces
    ):
        import threading

        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        svc = ScreeningService(registry, max_batch=1, max_wait=1e-3)
        blocker = svc.submit_async(tiny_traces[0], tiny_design)
        assert gated.started.wait(5)
        queued = [svc.submit_async(trace, tiny_design) for trace in tiny_traces[1:3]]

        closer = threading.Thread(target=lambda: svc.close(drain=False))
        closer.start()
        gated.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        # The in-flight request finished; the queued ones were *resolved*
        # with the typed error — not silently abandoned to hang forever.
        assert blocker.result(timeout=0) is not None
        for future in queued:
            with pytest.raises(ServiceClosed):
                future.result(timeout=0)
        assert svc.stats.failures == len(queued)

    def test_close_with_drain_answers_queued_requests(
        self, registry, serving_predictor, make_gated_predictor, tiny_design, tiny_traces
    ):
        import threading

        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        svc = ScreeningService(registry, max_batch=1, max_wait=1e-3)
        blocker = svc.submit_async(tiny_traces[0], tiny_design)
        assert gated.started.wait(5)
        queued = [svc.submit_async(trace, tiny_design) for trace in tiny_traces[1:3]]

        closer = threading.Thread(target=svc.close)
        closer.start()
        gated.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert blocker.result(timeout=0) is not None
        for future in queued:  # drained, not rejected
            assert future.result(timeout=0) is not None

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_worker_death_fails_batch_and_flushes_queue(
        self, registry, serving_predictor, make_gated_predictor, make_flaky_predictor,
        wait_for, tiny_design, tiny_traces
    ):
        class WorkerDeath(BaseException):
            """Non-Exception error: kills the worker thread outright."""

        lethal = make_gated_predictor(make_flaky_predictor(serving_predictor, [WorkerDeath()]))
        registry.register(tiny_design.name, lethal, persist=False)
        svc = ScreeningService(registry, max_batch=1, max_wait=1e-3)
        doomed = svc.submit_async(tiny_traces[0], tiny_design)
        assert lethal.started.wait(5)
        stranded = svc.submit_async(tiny_traces[1], tiny_design)
        lethal.release.set()

        # The in-hand batch gets the real error...
        with pytest.raises(WorkerDeath):
            doomed.result(timeout=10)
        # ...and the queued request is flushed with the typed error once the
        # worker is gone — before the fix its pending entry leaked forever.
        with pytest.raises(ServiceClosed):
            stranded.result(timeout=10)
        wait_for(lambda: not svc._worker.is_alive())
        with pytest.raises(ServiceClosed):
            svc.submit_async(tiny_traces[2], tiny_design)
        svc.close()  # still idempotent after a crashed worker


class TestFailureIsolation:
    """A failing forward pass must not leave stale coalescing state behind."""

    def test_predictor_failure_rejects_future_then_resubmission_succeeds(
        self, registry, serving_predictor, make_flaky_predictor, tiny_design, tiny_traces
    ):
        flaky = make_flaky_predictor(serving_predictor, [RuntimeError("transient GPU error")])
        registry.register(tiny_design.name, flaky, persist=False)
        with ScreeningService(registry, max_batch=4, max_wait=1e-3) as svc:
            with pytest.raises(RuntimeError, match="transient GPU error"):
                svc.submit(tiny_traces[0], tiny_design)
            assert svc.stats.failures == 1
            # The identical resubmission gets a FRESH attempt: the failed
            # in-flight entry was cleaned up, so nothing coalesces onto the
            # dead future and the retry reaches the recovered predictor.
            result = svc.submit(tiny_traces[0], tiny_design)
            assert svc.stats.coalesced == 0
            assert result.noise_map.shape == tiny_design.tile_grid.shape
        assert flaky.calls == 2


class TestHotSwapWhileInFlight:
    """Registry hot-swap with a batch in flight (satellite of PR 7)."""

    def test_swap_mid_batch_keeps_old_weights_for_in_flight_requests(
        self, registry, serving_predictor, alt_predictor, make_gated_predictor,
        tiny_design, tiny_traces
    ):
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)
        with ScreeningService(registry, max_batch=1, max_wait=1e-3) as svc:
            in_flight = svc.submit_async(tiny_traces[0], tiny_design)
            assert gated.started.wait(5)  # old checkpoint provably mid-batch
            registry.register(tiny_design.name, alt_predictor, persist=False)
            after = svc.submit_async(tiny_traces[1], tiny_design)
            gated.release.set()

            # The in-flight batch finished on the OLD weights...
            old = in_flight.result(timeout=10)
            expected_old = serving_predictor.predict_trace(tiny_traces[0], tiny_design)
            np.testing.assert_allclose(old.noise_map, expected_old.noise_map, rtol=1e-10)
            # ...the next batch ran on the NEW weights...
            new = after.result(timeout=10)
            expected_new = alt_predictor.predict_trace(tiny_traces[1], tiny_design)
            np.testing.assert_allclose(new.noise_map, expected_new.noise_map, rtol=1e-10)
            assert gated.calls == 1  # the old predictor never saw batch two

            # ...and old-fingerprint cache entries no longer match: the same
            # vector resubmitted is recomputed under the new fingerprint.
            recomputed = svc.submit(tiny_traces[0], tiny_design)
            assert svc.stats.cache_hits == 0
            np.testing.assert_allclose(
                recomputed.noise_map,
                alt_predictor.predict_trace(tiny_traces[0], tiny_design).noise_map,
                rtol=1e-10,
            )
            assert not np.allclose(recomputed.noise_map, old.noise_map)
            # The new-fingerprint entry it just stored does hit.
            svc.submit(tiny_traces[0], tiny_design)
            assert svc.stats.cache_hits == 1


class TestServiceLifecycleAndErrors:
    def test_unknown_design_raises_synchronously(self, service, tiny_traces, tiny_design):
        features = extract_vector_features(tiny_traces[0], tiny_design)
        with pytest.raises(KeyError):
            service.submit(features, "not-registered")

    def test_raw_trace_with_name_only_rejected(self, service, tiny_design, tiny_traces):
        with pytest.raises(TypeError):
            service.submit(tiny_traces[0], tiny_design.name)

    def test_worker_errors_propagate_to_caller(self, service, tiny_design, rng):
        bad = VectorFeatures(current_maps=rng.random((4, 5, 5)), name="wrong-shape")
        with pytest.raises(Exception):
            service.submit(bad, tiny_design.name)
        assert service.stats.failures == 1

    def test_submit_after_close_rejected(self, registry, tiny_design, tiny_traces):
        service = ScreeningService(registry, max_batch=4)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(tiny_traces[0], tiny_design)
        service.close()  # idempotent

    def test_latencies_recorded(self, service, tiny_design, tiny_traces):
        service.screen(tiny_traces[:4], tiny_design)
        latencies = service.latencies()
        assert len(latencies) == 4
        assert all(value >= 0 for value in latencies)


class TestMultiDesignGrouping:
    def test_batches_group_by_design(
        self, registry, tiny_design, serving_predictor, make_gated_predictor, tiny_traces
    ):
        sibling_spec = dataclasses.replace(tiny_design.spec, name="unit-test-b")
        sibling = make_design(sibling_spec, seed=0)
        registry.register(sibling.name, serving_predictor)
        gated = make_gated_predictor(serving_predictor)
        registry.register(tiny_design.name, gated, persist=False)

        with ScreeningService(registry, max_batch=16, max_wait=1e-3) as svc:
            blocker = svc.submit_async(tiny_traces[6], tiny_design)
            assert gated.started.wait(5)
            # Six requests across two designs queue behind the blocked batch
            # and drain together as ONE micro-batch with two design groups.
            futures = []
            for trace in tiny_traces[:3]:
                futures.append(svc.submit_async(trace, tiny_design))
            for trace in tiny_traces[3:6]:
                futures.append(svc.submit_async(trace, sibling))
            gated.release.set()
            blocker.result(timeout=10)
            results = [future.result(timeout=10) for future in futures]
        assert len(results) == 6
        assert svc.stats.batched_vectors == 7
        # One blocker batch, then exactly two per-design groups.
        assert svc.stats.model_batches == 3
        assert svc.stats.max_batch_observed == 3
