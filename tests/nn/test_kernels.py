"""Tests for the kernel-dispatch layer (``repro.nn.kernels``).

Covers the three things the module owns — dtype policy, thread sharding,
backend registry — plus the workspace pool's (shape, dtype) keying and
recency-ordered eviction, and the two end-to-end guarantees the refactor
makes: the default float64 path is bit-identical to the pre-refactor
implementation (golden arrays captured before the dispatch layer existed),
and float32 inference matches float64 to single-precision rounding.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.nn import Tensor, conv2d, conv_transpose2d, kernels, no_grad

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_float64.npz"


# ---------------------------------------------------------------------- #
# dtype policy
# ---------------------------------------------------------------------- #


def test_canonical_dtype_accepts_supported_specs():
    for spec in ("float64", np.float64, np.dtype(np.float64)):
        assert kernels.canonical_dtype(spec) == np.dtype(np.float64)
    for spec in ("float32", np.float32, np.dtype(np.float32)):
        assert kernels.canonical_dtype(spec) == np.dtype(np.float32)


@pytest.mark.parametrize("bad", ["float16", "int32", np.complex128, "bogus"])
def test_canonical_dtype_rejects_unsupported(bad):
    with pytest.raises((TypeError, ValueError)):
        kernels.canonical_dtype(bad)


def test_dtype_name_round_trips():
    assert kernels.dtype_name(np.float32) == "float32"
    assert kernels.dtype_name("float64") == "float64"


# ---------------------------------------------------------------------- #
# backend registry
# ---------------------------------------------------------------------- #


class _NegatingBackend(kernels.NumpyBackend):
    """A deliberately wrong backend so dispatch switches are observable."""

    name = "negating"

    def matmul(self, a, b):
        return -np.matmul(a, b)


def test_numpy_backend_always_registered():
    assert "numpy" in kernels.available_backends()
    assert kernels.get_backend_name() == "numpy"


def test_register_backend_rejects_numpy_replacement():
    with pytest.raises(ValueError):
        kernels.register_backend("numpy", _NegatingBackend())
    with pytest.raises(ValueError):
        kernels.register_backend("", _NegatingBackend())


def test_set_backend_unknown_name():
    with pytest.raises(KeyError):
        kernels.set_backend("no-such-backend")
    with pytest.raises(KeyError):
        kernels.use_backend("no-such-backend")


def test_use_backend_scoped_dispatch():
    kernels.register_backend("negating", _NegatingBackend())
    a = np.arange(6.0).reshape(2, 3)
    b = np.arange(12.0).reshape(3, 4)
    reference = np.matmul(a, b)
    with kernels.use_backend("negating"):
        assert kernels.get_backend_name() == "negating"
        np.testing.assert_array_equal(kernels.matmul(a, b), -reference)
    # The override is scoped: dispatch reverts on exit.
    assert kernels.get_backend_name() == "numpy"
    np.testing.assert_array_equal(kernels.matmul(a, b), reference)


def test_use_backend_is_thread_local():
    import threading

    kernels.register_backend("negating", _NegatingBackend())
    seen = {}

    def other_thread():
        seen["name"] = kernels.get_backend_name()

    with kernels.use_backend("negating"):
        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
    # The override applied to this thread only.
    assert seen["name"] == "numpy"


# ---------------------------------------------------------------------- #
# thread sharding
# ---------------------------------------------------------------------- #


def test_sharded_matmul_bit_identical():
    rng = np.random.default_rng(0)
    cases = [
        (rng.standard_normal((12, 5, 7)), rng.standard_normal((12, 7, 3))),  # 3d @ 3d
        (rng.standard_normal((4, 6)), rng.standard_normal((16, 6, 5))),  # 2d @ 3d
        (rng.standard_normal((16, 4, 6)), rng.standard_normal((6, 5))),  # 3d @ 2d
    ]
    for a, b in cases:
        reference = kernels.matmul(a, b)
        for threads in (2, 3, 5):
            with kernels.use_kernel_threads(threads):
                sharded = kernels.matmul(a, b)
            assert np.array_equal(sharded, reference)
            assert sharded.dtype == reference.dtype


def test_sharded_matmul_float32_bit_identical():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((10, 4, 8)).astype(np.float32)
    b = rng.standard_normal((10, 8, 3)).astype(np.float32)
    reference = kernels.matmul(a, b)
    assert reference.dtype == np.float32
    with kernels.use_kernel_threads(4):
        assert np.array_equal(kernels.matmul(a, b), reference)


def test_small_batches_never_sharded():
    # Batches below the shard threshold take the single-call path even with
    # threads configured (the result is identical either way; this pins the
    # no-overhead contract for tiny batches).
    rng = np.random.default_rng(2)
    a = rng.standard_normal((2, 3, 4))
    b = rng.standard_normal((2, 4, 5))
    with kernels.use_kernel_threads(8):
        np.testing.assert_array_equal(kernels.matmul(a, b), np.matmul(a, b))


def test_shard_bounds_cover_batch_exactly():
    for batch in (1, 7, 8, 13):
        for shards in (1, 2, 3, 8):
            bounds = kernels._shard_bounds(batch, min(shards, batch))
            assert bounds[0][0] == 0
            assert bounds[-1][1] == batch
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo


def test_set_kernel_threads_validation():
    with pytest.raises(ValueError):
        kernels.set_kernel_threads(0)
    with pytest.raises(ValueError):
        kernels.use_kernel_threads(0)


def test_threads_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
    assert kernels._threads_from_env() == 3
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "")
    assert kernels._threads_from_env() == 1
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "many")
    with pytest.raises(ValueError):
        kernels._threads_from_env()


# ---------------------------------------------------------------------- #
# workspace pool
# ---------------------------------------------------------------------- #


@pytest.fixture()
def fresh_pool():
    kernels.clear_workspace_pool()
    yield
    kernels.clear_workspace_pool()


def test_pool_keyed_by_shape_and_dtype(fresh_pool):
    f64 = kernels.take_workspace((4, 5), np.float64)
    f32 = kernels.take_workspace((4, 5), np.float32)
    assert f64.dtype == np.float64 and f32.dtype == np.float32
    kernels.release_workspace(f64)
    kernels.release_workspace(f32)
    # Same shape, different dtype: each take gets its own buffer back.
    assert kernels.take_workspace((4, 5), np.float32) is f32
    assert kernels.take_workspace((4, 5), np.float64) is f64


def test_pool_unsupported_buffers_not_pooled(fresh_pool):
    ints = np.empty((3, 3), dtype=np.int64)
    kernels.release_workspace(ints)
    strided = np.empty((6, 6))[::2, ::2]
    kernels.release_workspace(strided)
    assert kernels.workspace_pool_stats()["pooled_bytes"] == 0


def test_pool_caps_buffers_per_key(fresh_pool):
    buffers = [kernels.take_workspace((8,)) for _ in range(6)]
    for buffer in buffers:
        kernels.release_workspace(buffer)
    stats = kernels.workspace_pool_stats()
    assert stats["keys"][((8,), "float64")] == kernels._MAX_POOLED_PER_KEY


def test_pool_eviction_is_recency_ordered(fresh_pool, monkeypatch):
    # Cap the pool at ~3 small buffers so eviction is easy to trigger.
    buffer_bytes = np.empty((16,), dtype=np.float64).nbytes
    monkeypatch.setattr(kernels, "_MAX_POOLED_BYTES", 3 * buffer_bytes)

    hot = kernels.take_workspace((16,))
    cold_a = kernels.take_workspace((17,))
    cold_b = kernels.take_workspace((18,))
    for buffer in (cold_a, cold_b, hot):
        kernels.release_workspace(buffer)

    # Touch the hot key (take + release refresh its recency)...
    assert kernels.take_workspace((16,)) is hot
    kernels.release_workspace(hot)
    # ...then release new shapes until something must be evicted.
    kernels.release_workspace(np.empty((19,)))
    stats = kernels.workspace_pool_stats()
    # The least-recently-used keys (cold_a, then cold_b) were evicted first;
    # the hot key survived the drift.  Pre-fix behaviour evicted by insertion
    # order, which would have dropped the hot key instead.
    assert ((16,), "float64") in stats["keys"]
    assert ((17,), "float64") not in stats["keys"]


def test_pool_take_refreshes_recency_with_multiple_buffers(fresh_pool, monkeypatch):
    buffer_bytes = np.empty((16,), dtype=np.float64).nbytes
    monkeypatch.setattr(kernels, "_MAX_POOLED_BYTES", 4 * buffer_bytes)

    hot_a = kernels.take_workspace((16,))
    hot_b = kernels.take_workspace((16,))
    cold = kernels.take_workspace((17,))
    kernels.release_workspace(hot_a)
    kernels.release_workspace(hot_b)
    kernels.release_workspace(cold)
    # Taking one of the hot key's buffers (leaving one pooled) must move the
    # key to the back of the eviction order even though the key stays present.
    taken = kernels.take_workspace((16,))
    kernels.release_workspace(np.empty((18,)))
    kernels.release_workspace(np.empty((19,)))
    stats = kernels.workspace_pool_stats()
    assert ((16,), "float64") in stats["keys"]
    assert ((17,), "float64") not in stats["keys"]
    kernels.release_workspace(taken)


def test_pool_oversized_buffer_bypasses_pool(fresh_pool, monkeypatch):
    monkeypatch.setattr(kernels, "_MAX_POOLED_BYTES", 64)
    small = kernels.take_workspace((4,))
    kernels.release_workspace(small)
    before = kernels.workspace_pool_stats()
    kernels.release_workspace(np.empty((1024,)))
    # The oversized buffer was dropped without disturbing pooled entries.
    assert kernels.workspace_pool_stats() == before


# ---------------------------------------------------------------------- #
# golden float64 bit-identity (pre-refactor reference outputs)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def golden():
    return np.load(GOLDEN_PATH)


@pytest.mark.parametrize(
    "tag, stride, padding, mode",
    [("s1_replicate", 1, 1, "replicate"), ("s2_zeros", 2, 1, "zeros")],
)
def test_conv2d_bit_identical_to_pre_refactor(golden, tag, stride, padding, mode):
    x = Tensor(golden[f"conv_{tag}_x"], requires_grad=True)
    w = Tensor(golden[f"conv_{tag}_w"], requires_grad=True)
    b = Tensor(golden[f"conv_{tag}_b"], requires_grad=True)
    y = conv2d(x, w, b, stride=stride, padding=padding, padding_mode=mode)
    y.backward(golden[f"conv_{tag}_seed"])
    assert np.array_equal(y.data, golden[f"conv_{tag}_y"])
    assert np.array_equal(x.grad, golden[f"conv_{tag}_gx"])
    assert np.array_equal(w.grad, golden[f"conv_{tag}_gw"])
    assert np.array_equal(b.grad, golden[f"conv_{tag}_gb"])


def test_conv_transpose2d_bit_identical_to_pre_refactor(golden):
    x = Tensor(golden["deconv_x"], requires_grad=True)
    w = Tensor(golden["deconv_w"], requires_grad=True)
    b = Tensor(golden["deconv_b"], requires_grad=True)
    y = conv_transpose2d(x, w, b, stride=2, padding=1)
    y.backward(golden["deconv_seed"])
    assert np.array_equal(y.data, golden["deconv_y"])
    assert np.array_equal(x.grad, golden["deconv_gx"])
    assert np.array_equal(w.grad, golden["deconv_gw"])
    assert np.array_equal(b.grad, golden["deconv_gb"])


def _golden_model():
    return WorstCaseNoiseNet(
        num_bumps=5,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=3
        ),
    )


def test_model_forward_bit_identical_to_pre_refactor(golden):
    model = _golden_model()
    with no_grad():
        pred = model.forward_batch(golden["model_currents"], golden["model_distance"])
    assert np.array_equal(pred.data, golden["model_pred"])


def test_model_ragged_forward_bit_identical_to_pre_refactor(golden):
    model = _golden_model()
    ragged = [golden[f"model_ragged_{i}"] for i in range(4)]
    with no_grad():
        pred = model.forward_batch(ragged, golden["model_distance"])
    assert np.array_equal(pred.data, golden["model_ragged_pred"])


# ---------------------------------------------------------------------- #
# float32 vs float64 parity
# ---------------------------------------------------------------------- #


def test_float32_forward_matches_float64(golden):
    model64 = _golden_model()
    model32 = _golden_model().astype("float32")
    currents = golden["model_currents"]
    distance = golden["model_distance"]
    with no_grad():
        pred64 = model64.forward_batch(currents, distance)
        pred32 = model32.forward_batch(
            currents.astype(np.float32), distance.astype(np.float32)
        )
    assert pred64.data.dtype == np.float64
    assert pred32.data.dtype == np.float32
    np.testing.assert_allclose(pred32.data, pred64.data, rtol=1e-3, atol=1e-4)


def test_float32_ragged_forward_matches_float64(golden):
    model64 = _golden_model()
    model32 = _golden_model().astype("float32")
    ragged = [golden[f"model_ragged_{i}"] for i in range(4)]
    distance = golden["model_distance"]
    with no_grad():
        pred64 = model64.forward_batch(ragged, distance)
        pred32 = model32.forward_batch(
            [r.astype(np.float32) for r in ragged], distance.astype(np.float32)
        )
    assert pred32.data.dtype == np.float32
    np.testing.assert_allclose(pred32.data, pred64.data, rtol=1e-3, atol=1e-4)


def test_module_astype_round_trip():
    model = _golden_model()
    originals = {name: p.data.copy() for name, p in model.named_parameters()}
    model.astype("float32")
    for _, parameter in model.named_parameters():
        assert parameter.data.dtype == np.float32
    model.astype(np.float64)
    for name, parameter in model.named_parameters():
        assert parameter.data.dtype == np.float64
        # float64 -> float32 -> float64 loses mantissa bits; values stay close.
        np.testing.assert_allclose(parameter.data, originals[name], rtol=1e-6, atol=1e-7)


def test_tensor_astype_casts_gradients_back():
    x = Tensor(np.arange(4.0), requires_grad=True)
    y = (x.astype("float32") * 2.0).sum()
    assert y.data.dtype == np.float32
    y.backward()
    # The Cast adjoint restores the leaf's dtype, so the optimizer state
    # (float64) never silently mixes precisions.
    assert x.grad.dtype == np.float64
    np.testing.assert_array_equal(x.grad, np.full(4, 2.0))
