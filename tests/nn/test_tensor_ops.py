"""Tests for the autograd tensor and its elementwise / reduction ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, cat, no_grad, stack
from tests.nn.gradcheck import check_input_gradient


class TestTensorBasics:
    def test_construction_and_shape(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4
        assert not tensor.requires_grad

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_item_rejects_non_scalar_backward(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (tensor * 2).backward()

    def test_detach_breaks_graph(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        detached = (tensor * 2).detach()
        assert not detached.requires_grad

    def test_as_tensor_passthrough(self):
        tensor = Tensor(np.ones(2))
        assert as_tensor(tensor) is tensor
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_no_grad_blocks_recording(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            output = (tensor * 2).sum()
        assert output._function is None

    def test_gradient_accumulates_across_backward_calls(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor.sum()).backward()
        (tensor.sum()).backward()
        np.testing.assert_allclose(tensor.grad, 2 * np.ones(3))

    def test_zero_grad(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        tensor.sum().backward()
        tensor.zero_grad()
        assert tensor.grad is None

    def test_backward_shape_mismatch_rejected(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        output = tensor * 2
        with pytest.raises(ValueError):
            output.backward(np.ones(4))

    def test_repr(self):
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))


class TestArithmetic:
    def test_add_and_scalar(self):
        result = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(result.data, [2.0, 3.0])

    def test_radd_rsub_rmul_rdiv(self):
        tensor = Tensor([2.0, 4.0])
        np.testing.assert_allclose((1.0 + tensor).data, [3.0, 5.0])
        np.testing.assert_allclose((10.0 - tensor).data, [8.0, 6.0])
        np.testing.assert_allclose((3.0 * tensor).data, [6.0, 12.0])
        np.testing.assert_allclose((8.0 / tensor).data, [4.0, 2.0])

    def test_neg_and_pow(self):
        tensor = Tensor([2.0, 3.0])
        np.testing.assert_allclose((-tensor).data, [-2.0, -3.0])
        np.testing.assert_allclose((tensor ** 2).data, [4.0, 9.0])

    def test_broadcast_add_gradient(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((1, 3))
        check_input_gradient(lambda t: t + b, a)
        check_input_gradient(lambda t: Tensor(a) + t, b)

    def test_mul_gradient(self, rng):
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((3, 5))
        check_input_gradient(lambda t: t * b, a)

    def test_div_gradient(self, rng):
        a = rng.standard_normal((4, 2))
        b = rng.standard_normal((4, 2)) + 3.0
        check_input_gradient(lambda t: t / b, a)
        check_input_gradient(lambda t: Tensor(a) / t, b)

    def test_matmul_gradient(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 5))
        check_input_gradient(lambda t: t @ b, a)
        check_input_gradient(lambda t: Tensor(a) @ t, b)

    def test_matmul_values(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)


class TestElementwiseFunctions:
    @pytest.mark.parametrize(
        "method",
        ["relu", "abs", "sigmoid", "exp"],
    )
    def test_gradients(self, method, rng):
        array = rng.standard_normal((3, 4))
        check_input_gradient(lambda t: getattr(t, method)(), array)

    def test_sqrt_and_log_gradients_on_positive_input(self, rng):
        array = rng.random((3, 4)) + 0.5
        check_input_gradient(lambda t: t.sqrt(), array)
        check_input_gradient(lambda t: t.log(), array)

    def test_relu_values(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_range(self, rng):
        values = Tensor(rng.standard_normal(100)).sigmoid().data
        assert np.all((values > 0) & (values < 1))


class TestReductions:
    def test_sum_axis_values(self):
        tensor = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_allclose(tensor.sum(axis=0).data, [3.0, 5.0, 7.0])
        np.testing.assert_allclose(tensor.sum(axis=1, keepdims=True).data, [[3.0], [12.0]])

    def test_mean_matches_numpy(self, rng):
        array = rng.standard_normal((4, 5))
        np.testing.assert_allclose(Tensor(array).mean(axis=1).data, array.mean(axis=1))

    def test_max_min_values(self, rng):
        array = rng.standard_normal((4, 5))
        np.testing.assert_allclose(Tensor(array).max(axis=0).data, array.max(axis=0))
        np.testing.assert_allclose(Tensor(array).min(axis=1).data, array.min(axis=1))

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_gradient(self, axis, keepdims, rng):
        array = rng.standard_normal((3, 4))
        check_input_gradient(lambda t: t.sum(axis=axis, keepdims=keepdims), array)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_gradient(self, axis, rng):
        array = rng.standard_normal((3, 4))
        check_input_gradient(lambda t: t.mean(axis=axis), array)

    def test_max_gradient_no_ties(self, rng):
        array = rng.standard_normal((4, 6))
        check_input_gradient(lambda t: t.max(axis=0), array)
        check_input_gradient(lambda t: t.min(axis=1), array)

    def test_max_gradient_with_ties_splits_evenly(self):
        array = np.array([[1.0, 1.0, 0.0]])
        tensor = Tensor(array, requires_grad=True)
        tensor.max(axis=1).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0.5, 0.5, 0.0]])

    def test_std_gradient(self, rng):
        array = rng.standard_normal((5, 4))
        check_input_gradient(lambda t: t.std(axis=0), array, rtol=1e-3, atol=1e-5)

    def test_std_matches_numpy(self, rng):
        array = rng.standard_normal((50,))
        assert Tensor(array).std().item() == pytest.approx(array.std(), rel=1e-6)


class TestShapeOps:
    def test_reshape_and_gradient(self, rng):
        array = rng.standard_normal((2, 6))
        check_input_gradient(lambda t: t.reshape(3, 4), array)
        check_input_gradient(lambda t: t.reshape((12,)), array)

    def test_transpose_and_gradient(self, rng):
        array = rng.standard_normal((2, 3, 4))
        check_input_gradient(lambda t: t.transpose((2, 0, 1)), array)

    def test_getitem_slice_gradient(self, rng):
        array = rng.standard_normal((4, 5, 6))
        check_input_gradient(lambda t: t[:, 1:4, ::2], array)

    def test_getitem_values(self):
        tensor = Tensor(np.arange(10, dtype=float))
        np.testing.assert_allclose(tensor[2:5].data, [2.0, 3.0, 4.0])

    def test_cat_values_and_gradient(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 2))
        joined = cat([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(joined.data, np.concatenate([a, b], axis=1))
        check_input_gradient(lambda t: cat([t, Tensor(b)], axis=1), a)

    def test_stack_values_and_gradient(self, rng):
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((3, 2))
        stacked = stack([Tensor(a), Tensor(b)], axis=0)
        assert stacked.shape == (2, 3, 2)
        check_input_gradient(lambda t: stack([t, Tensor(b)], axis=0), a)

    @given(rows=st.integers(1, 5), cols=st.integers(1, 5), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_sum_of_parts_equals_total(self, rows, cols, seed):
        generator = np.random.default_rng(seed)
        array = generator.standard_normal((rows, cols))
        tensor = Tensor(array)
        assert tensor.sum().item() == pytest.approx(
            tensor.sum(axis=0).sum().item(), rel=1e-9, abs=1e-12
        )


class TestBroadcastTo:
    def test_values(self, rng):
        tensor = Tensor(rng.random((1, 1, 3, 3)))
        expanded = tensor.broadcast_to(4, 1, 3, 3)
        assert expanded.shape == (4, 1, 3, 3)
        for i in range(4):
            np.testing.assert_array_equal(expanded.data[i], tensor.data[0])

    def test_output_is_contiguous(self, rng):
        expanded = Tensor(rng.random((1, 3))).broadcast_to(5, 3)
        assert expanded.data.flags["C_CONTIGUOUS"]

    def test_gradient_sums_over_broadcast_axes(self, rng):
        array = rng.random((1, 3))
        check_input_gradient(lambda t: t.broadcast_to(4, 3), array)

    def test_tuple_shape_accepted(self, rng):
        expanded = Tensor(rng.random((2, 1))).broadcast_to((2, 5))
        assert expanded.shape == (2, 5)
