"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn import Tensor, huber_loss, l1_loss, mse_loss
from tests.nn.gradcheck import numerical_gradient


class TestL1Loss:
    def test_value(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        target = np.array([1.0, 0.0, 6.0])
        assert l1_loss(prediction, target).item() == pytest.approx((0 + 2 + 3) / 3)

    def test_sum_reduction(self):
        assert l1_loss(Tensor([1.0, -1.0]), np.zeros(2), reduction="sum").item() == pytest.approx(2.0)

    def test_none_reduction_shape(self):
        loss = l1_loss(Tensor(np.ones((2, 3))), np.zeros((2, 3)), reduction="none")
        assert loss.shape == (2, 3)

    def test_gradient(self, rng):
        prediction_array = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        prediction = Tensor(prediction_array, requires_grad=True)
        l1_loss(prediction, target).backward()
        numeric = numerical_gradient(
            lambda: float(l1_loss(Tensor(prediction_array), target).data), prediction_array
        )
        np.testing.assert_allclose(prediction.grad, numeric, atol=1e-6)

    def test_zero_at_perfect_prediction(self, rng):
        target = rng.standard_normal((4,))
        assert l1_loss(Tensor(target.copy()), target).item() == pytest.approx(0.0)


class TestMseLoss:
    def test_value(self):
        assert mse_loss(Tensor([2.0, 0.0]), np.array([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_gradient(self, rng):
        prediction_array = rng.standard_normal((5,))
        target = rng.standard_normal((5,))
        prediction = Tensor(prediction_array, requires_grad=True)
        mse_loss(prediction, target).backward()
        expected = 2.0 * (prediction_array - target) / 5.0
        np.testing.assert_allclose(prediction.grad, expected, rtol=1e-9)


class TestHuberLoss:
    def test_quadratic_region_matches_mse_over_two(self):
        prediction = Tensor([0.5])
        target = np.array([0.0])
        assert huber_loss(prediction, target, delta=1.0).item() == pytest.approx(0.125)

    def test_linear_region(self):
        prediction = Tensor([3.0])
        target = np.array([0.0])
        assert huber_loss(prediction, target, delta=1.0).item() == pytest.approx(1.0 * (3.0 - 0.5))

    def test_gradient_finite(self, rng):
        prediction_array = rng.standard_normal((6,)) * 3
        target = rng.standard_normal((6,))
        prediction = Tensor(prediction_array, requires_grad=True)
        huber_loss(prediction, target, delta=1.0).backward()
        numeric = numerical_gradient(
            lambda: float(huber_loss(Tensor(prediction_array), target, delta=1.0).data),
            prediction_array,
        )
        np.testing.assert_allclose(prediction.grad, numeric, atol=1e-5)

    def test_rejects_non_positive_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor([1.0]), np.zeros(1), delta=0.0)


def test_unknown_reduction_rejected():
    with pytest.raises(ValueError):
        l1_loss(Tensor([1.0]), np.zeros(1), reduction="median")
