"""Tests for repro.nn.serialization."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    ReLU,
    Sequential,
    Tensor,
    load_checkpoint,
    load_extras,
    save_checkpoint,
)


@pytest.fixture()
def model():
    return Sequential(Conv2d(1, 2, seed=0), ReLU(), Conv2d(2, 1, seed=1))


class TestCheckpointRoundtrip:
    def test_weights_restored(self, model, tmp_path, rng):
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        clone = Sequential(Conv2d(1, 2, seed=5), ReLU(), Conv2d(2, 1, seed=6))
        load_checkpoint(clone, path)
        x = Tensor(rng.random((1, 1, 5, 5)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_metadata_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.npz"
        metadata = {"normalizer": {"scale": 2.0}, "note": "hello"}
        save_checkpoint(model, path, metadata=metadata)
        loaded = load_checkpoint(model, path)
        assert loaded == metadata

    def test_no_metadata_returns_none(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) is None

    def test_incompatible_model_rejected(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = Sequential(Conv2d(1, 3, seed=0))
        with pytest.raises(ValueError):
            load_checkpoint(other, path)


class TestCheckpointExtras:
    def test_extras_roundtrip(self, model, tmp_path, rng):
        path = tmp_path / "model.npz"
        distance = rng.random((3, 4, 4))
        save_checkpoint(model, path, extras={"distance": distance})
        extras = load_extras(path)
        assert set(extras) == {"distance"}
        np.testing.assert_array_equal(extras["distance"], distance)

    def test_extras_ignored_by_load_checkpoint(self, model, tmp_path, rng):
        path = tmp_path / "model.npz"
        save_checkpoint(
            model, path, metadata={"k": 1}, extras={"aux": rng.random(5)}
        )
        clone = Sequential(Conv2d(1, 2, seed=5), ReLU(), Conv2d(2, 1, seed=6))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"k": 1}
        x = Tensor(rng.random((1, 1, 5, 5)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_no_extras_returns_empty(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert load_extras(path) == {}
