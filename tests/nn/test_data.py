"""Tests for repro.nn.data."""

import numpy as np
import pytest

from repro.nn import ArrayDataset, BatchIterator


class TestArrayDataset:
    def test_len_and_getitem(self):
        dataset = ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(dataset) == 10
        first, second = dataset[3]
        assert first == 3 and second == 6

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(5), np.arange(6))

    def test_requires_at_least_one_array(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_fancy_indexing(self):
        dataset = ArrayDataset(np.arange(10))
        (selected,) = dataset[np.array([1, 3, 5])]
        np.testing.assert_array_equal(selected, [1, 3, 5])


class TestBatchIterator:
    def test_covers_all_samples(self):
        dataset = ArrayDataset(np.arange(10))
        iterator = BatchIterator(dataset, batch_size=3, shuffle=False)
        collected = np.concatenate([batch[0] for batch in iterator])
        np.testing.assert_array_equal(np.sort(collected), np.arange(10))

    def test_len_with_and_without_drop_last(self):
        dataset = ArrayDataset(np.arange(10))
        assert len(BatchIterator(dataset, batch_size=3, drop_last=False)) == 4
        assert len(BatchIterator(dataset, batch_size=3, drop_last=True)) == 3

    def test_drop_last_skips_partial(self):
        dataset = ArrayDataset(np.arange(10))
        iterator = BatchIterator(dataset, batch_size=4, shuffle=False, drop_last=True)
        sizes = [batch[0].shape[0] for batch in iterator]
        assert sizes == [4, 4]

    def test_shuffle_changes_order_but_not_content(self):
        dataset = ArrayDataset(np.arange(50))
        iterator = BatchIterator(dataset, batch_size=50, shuffle=True, seed=0)
        (batch,) = [b[0] for b in iterator]
        assert not np.array_equal(batch, np.arange(50))
        np.testing.assert_array_equal(np.sort(batch), np.arange(50))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(ArrayDataset(np.arange(5)), batch_size=0)
