"""Tests for tape-recorded autograd graphs (repro.nn.tensor.record_graph)."""

import numpy as np
import pytest

from repro.nn import Conv2d, ReLU, Sequential, Tensor, record_graph
from repro.nn.conv import Conv2dFunction
from repro.nn.tensor import _GRAD_STATE


def _loss(network, inputs):
    return network(Tensor(inputs)).abs().mean()


def _grads(network):
    return [parameter.grad.copy() for parameter in network.parameters()]


@pytest.fixture()
def network():
    return Sequential(
        Conv2d(1, 4, kernel_size=3, seed=0), ReLU(), Conv2d(4, 1, kernel_size=3, seed=1)
    )


class TestRecordGraph:
    def test_tape_backward_matches_dfs_backward_exactly(self, network, rng):
        inputs = rng.random((4, 1, 6, 6))
        _loss(network, inputs).backward()
        dfs_grads = _grads(network)

        network.zero_grad()
        with record_graph():
            _loss(network, inputs).backward()
        tape_grads = _grads(network)

        for tape_grad, dfs_grad in zip(tape_grads, dfs_grads):
            np.testing.assert_array_equal(tape_grad, dfs_grad)

    def test_backward_on_non_final_node_falls_back_to_dfs(self, network, rng):
        inputs = rng.random((2, 1, 6, 6))
        _loss(network, inputs).backward()
        expected = _grads(network)

        network.zero_grad()
        with record_graph():
            loss = _loss(network, inputs)
            _ = loss * 2.0  # the tape's newest node is no longer the loss
            loss.backward()
        for actual_grad, expected_grad in zip(_grads(network), expected):
            np.testing.assert_array_equal(actual_grad, expected_grad)

    def test_subgraph_built_outside_tape_still_receives_gradients(self, network, rng):
        # A cached intermediate created before the recording context opened
        # is not on the tape; backward must still reach the weights behind
        # it (finished with a DFS over the out-of-tape remainder).
        prefix = Conv2d(1, 1, kernel_size=3, seed=2)
        inputs = rng.random((2, 1, 6, 6))

        cached = prefix(Tensor(inputs))
        network(cached).abs().mean().backward()
        expected = _grads(network) + _grads(prefix)

        network.zero_grad()
        prefix.zero_grad()
        cached = prefix(Tensor(inputs))  # built OUTSIDE the tape
        with record_graph():
            network(cached).abs().mean().backward()
        for actual_grad, expected_grad in zip(_grads(network) + _grads(prefix), expected):
            np.testing.assert_allclose(actual_grad, expected_grad, rtol=1e-12, atol=0)

    def test_contexts_nest_and_restore(self):
        assert getattr(_GRAD_STATE, "tape", None) is None
        with record_graph():
            outer = _GRAD_STATE.tape
            Tensor(np.ones(2), requires_grad=True) * 2.0
            assert len(outer) == 1
            with record_graph():
                assert _GRAD_STATE.tape == []
            assert _GRAD_STATE.tape is outer
        assert _GRAD_STATE.tape is None

    def test_tape_not_recorded_outside_context(self):
        Tensor(np.ones(2), requires_grad=True) * 2.0
        assert getattr(_GRAD_STATE, "tape", None) is None


class TestNeedsInputGrad:
    def test_non_grad_input_gets_no_gradient_but_weights_do(self, network, rng):
        inputs = rng.random((2, 1, 6, 6))
        tensor = Tensor(inputs)  # requires_grad=False
        network(tensor).abs().mean().backward()
        assert tensor.grad is None
        for parameter in network.parameters():
            assert parameter.grad is not None

    def test_weight_grads_identical_with_and_without_input_grad(self, network, rng):
        inputs = rng.random((2, 1, 6, 6))
        _loss(network, inputs).backward()
        without_input = _grads(network)

        network.zero_grad()
        tensor = Tensor(inputs.copy(), requires_grad=True)
        network(tensor).abs().mean().backward()
        assert tensor.grad is not None
        for actual_grad, expected_grad in zip(_grads(network), without_input):
            np.testing.assert_array_equal(actual_grad, expected_grad)


class TestWorkspaceRecycling:
    def test_second_backward_through_conv_raises(self, network, rng):
        loss = _loss(network, rng.random((2, 1, 6, 6)))
        loss.backward()
        with pytest.raises(RuntimeError, match="workspace"):
            loss.backward()

    def test_repeated_steps_reuse_workspaces_and_stay_finite(self, network, rng):
        inputs = rng.random((2, 1, 6, 6))
        reference = None
        for _ in range(4):
            network.zero_grad()
            with record_graph():
                _loss(network, inputs).backward()
            grads = _grads(network)
            if reference is None:
                reference = grads
            for grad, expected in zip(grads, reference):
                np.testing.assert_array_equal(grad, expected)
