"""Numerical gradient checking helper shared by the nn tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Tensor


def numerical_gradient(scalar_fn: Callable[[], float], array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``scalar_fn`` with respect to ``array``.

    ``scalar_fn`` must read ``array`` by reference (the helper perturbs it in
    place and restores it).
    """
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = scalar_fn()
        array[index] = original - eps
        minus = scalar_fn()
        array[index] = original
        gradient[index] = (plus - minus) / (2.0 * eps)
        iterator.iternext()
    return gradient


def check_input_gradient(
    build_output: Callable[[Tensor], Tensor],
    input_array: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert the analytic input gradient matches central differences.

    ``build_output`` maps an input tensor to an output tensor of any shape;
    the scalar objective is ``sum(output * weights)`` with fixed random
    weights so every output element contributes.
    """
    rng = np.random.default_rng(0)
    probe_input = Tensor(input_array.copy(), requires_grad=True)
    probe_output = build_output(probe_input)
    weights = rng.standard_normal(probe_output.shape)

    tensor = Tensor(input_array, requires_grad=True)
    objective = (build_output(tensor) * weights).sum()
    objective.backward()
    analytic = tensor.grad

    def scalar_fn() -> float:
        value = (build_output(Tensor(input_array)) * weights).sum()
        return float(value.data)

    numeric = numerical_gradient(scalar_fn, input_array)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_parameter_gradient(
    module,
    build_output: Callable[[], Tensor],
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert analytic gradients of every module parameter match central differences."""
    rng = np.random.default_rng(1)
    weights = rng.standard_normal(build_output().shape)

    module.zero_grad()
    objective = (build_output() * weights).sum()
    objective.backward()

    for name, parameter in module.named_parameters():
        def scalar_fn() -> float:
            return float((build_output() * weights).sum().data)

        numeric = numerical_gradient(scalar_fn, parameter.data)
        np.testing.assert_allclose(
            parameter.grad, numeric, rtol=rtol, atol=atol, err_msg=f"parameter {name}"
        )
