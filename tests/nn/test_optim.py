"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Conv2d, Linear, ReLU, Sequential, Tensor, l1_loss, mse_loss
from repro.nn.modules import Parameter


def _quadratic_problem():
    """A single parameter whose optimum is at 3.0."""
    parameter = Parameter(np.array([0.0]))

    def loss_fn():
        return mse_loss(parameter * 1.0, np.array([3.0]))

    return parameter, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter, loss_fn = _quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        parameter_plain, loss_plain = _quadratic_problem()
        parameter_momentum, loss_momentum = _quadratic_problem()
        plain = SGD([parameter_plain], learning_rate=0.01)
        momentum = SGD([parameter_momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            for optimizer, loss_fn in ((plain, loss_plain), (momentum, loss_momentum)):
                optimizer.zero_grad()
                loss_fn().backward()
                optimizer.step()
        assert abs(parameter_momentum.data[0] - 3.0) < abs(parameter_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], learning_rate=0.5)
        optimizer.step()  # no gradient accumulated yet
        assert parameter.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter, loss_fn = _quadratic_problem()
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_trains_small_conv_net(self, rng):
        # Fit y = 2x with a two-layer conv net; the loss must drop clearly.
        network = Sequential(
            Conv2d(1, 4, kernel_size=3, seed=0), ReLU(), Conv2d(4, 1, kernel_size=3, seed=1)
        )
        optimizer = Adam(network.parameters(), learning_rate=1e-2)
        inputs = rng.random((8, 1, 6, 6))
        targets = 2.0 * inputs
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = l1_loss(network(Tensor(inputs)), targets)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.4 * first_loss

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_linear_regression_recovers_weights(self, rng):
        true_weight = np.array([[2.0, -1.0]])
        layer = Linear(2, 1, seed=0)
        optimizer = Adam(layer.parameters(), learning_rate=5e-2)
        inputs = rng.standard_normal((64, 2))
        targets = inputs @ true_weight.T
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(layer(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)


def _make_params(seed: int) -> list[Parameter]:
    rng = np.random.default_rng(seed)
    shapes = [(4, 3, 3, 3), (4,), (8, 4, 3, 3), (8,), (1, 8)]
    return [Parameter(rng.standard_normal(shape)) for shape in shapes]


def _reference_adam_step(state: dict, parameters, learning_rate, betas=(0.9, 0.999),
                         epsilon=1e-8, weight_decay=0.0) -> None:
    """One per-parameter Adam step exactly as the pre-fused implementation."""
    state.setdefault("m", [np.zeros_like(p.data) for p in parameters])
    state.setdefault("v", [np.zeros_like(p.data) for p in parameters])
    state["t"] = state.get("t", 0) + 1
    beta1, beta2 = betas
    bias_correction1 = 1.0 - beta1 ** state["t"]
    bias_correction2 = 1.0 - beta2 ** state["t"]
    for parameter, first, second in zip(parameters, state["m"], state["v"]):
        if parameter.grad is None:
            continue
        gradient = parameter.grad
        if weight_decay:
            gradient = gradient + weight_decay * parameter.data
        first *= beta1
        first += (1.0 - beta1) * gradient
        second *= beta2
        second += (1.0 - beta2) * gradient * gradient
        corrected_first = first / bias_correction1
        corrected_second = second / bias_correction2
        parameter.data = parameter.data - learning_rate * corrected_first / (
            np.sqrt(corrected_second) + epsilon
        )


def _reference_sgd_step(state: dict, parameters, learning_rate, momentum=0.0,
                        weight_decay=0.0) -> None:
    """One per-parameter SGD step exactly as the pre-fused implementation."""
    state.setdefault("v", [np.zeros_like(p.data) for p in parameters])
    for parameter, velocity in zip(parameters, state["v"]):
        if parameter.grad is None:
            continue
        gradient = parameter.grad
        if weight_decay:
            gradient = gradient + weight_decay * parameter.data
        velocity *= momentum
        velocity += gradient
        parameter.data = parameter.data - learning_rate * velocity


class TestFusedSteps:
    """The fused flat-buffer steps must be bit-exact with the reference loops."""

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_fused_adam_bit_exact(self, weight_decay):
        fused_params = _make_params(seed=1)
        reference_params = _make_params(seed=1)
        optimizer = Adam(fused_params, learning_rate=1e-3, weight_decay=weight_decay)
        state: dict = {}
        grad_rng = np.random.default_rng(2)
        for _ in range(20):
            for fused, reference in zip(fused_params, reference_params):
                gradient = grad_rng.standard_normal(fused.data.shape)
                fused.grad = gradient.copy()
                reference.grad = gradient.copy()
            optimizer.step()
            _reference_adam_step(
                state, reference_params, learning_rate=1e-3, weight_decay=weight_decay
            )
        for fused, reference in zip(fused_params, reference_params):
            np.testing.assert_array_equal(fused.data, reference.data)

    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.01)])
    def test_fused_sgd_bit_exact(self, momentum, weight_decay):
        fused_params = _make_params(seed=3)
        reference_params = _make_params(seed=3)
        optimizer = SGD(
            fused_params, learning_rate=1e-2, momentum=momentum, weight_decay=weight_decay
        )
        state: dict = {}
        grad_rng = np.random.default_rng(4)
        for _ in range(20):
            for fused, reference in zip(fused_params, reference_params):
                gradient = grad_rng.standard_normal(fused.data.shape)
                fused.grad = gradient.copy()
                reference.grad = gradient.copy()
            optimizer.step()
            _reference_sgd_step(
                state, reference_params, learning_rate=1e-2,
                momentum=momentum, weight_decay=weight_decay,
            )
        for fused, reference in zip(fused_params, reference_params):
            np.testing.assert_array_equal(fused.data, reference.data)

    def test_missing_grad_falls_back_and_preserves_skip_semantics(self):
        fused_params = _make_params(seed=5)
        reference_params = _make_params(seed=5)
        optimizer = Adam(fused_params, learning_rate=1e-2)
        state: dict = {}
        grad_rng = np.random.default_rng(6)
        for step in range(6):
            for index, (fused, reference) in enumerate(zip(fused_params, reference_params)):
                if step % 2 == 0 and index == 2:
                    fused.grad = None
                    reference.grad = None
                    continue
                gradient = grad_rng.standard_normal(fused.data.shape)
                fused.grad = gradient.copy()
                reference.grad = gradient.copy()
            optimizer.step()
            _reference_adam_step(state, reference_params, learning_rate=1e-2)
        for fused, reference in zip(fused_params, reference_params):
            np.testing.assert_array_equal(fused.data, reference.data)

    def test_fused_moments_and_fallback_share_state(self):
        # A fused step followed by a skip-step must see the fused step's
        # moments through the per-parameter views (and vice versa).
        parameter = Parameter(np.array([1.0, -2.0]))
        other = Parameter(np.array([0.5]))
        optimizer = Adam([parameter, other], learning_rate=1e-2)
        parameter.grad = np.array([0.1, 0.2])
        other.grad = np.array([0.3])
        optimizer.step()  # fused
        first_after_fused = optimizer._first_moment[0].copy()
        assert np.any(first_after_fused != 0.0)
        parameter.grad = np.array([0.1, 0.2])
        other.grad = None
        optimizer.step()  # fallback (views over the same flat buffers)
        assert np.any(optimizer._first_moment[0] != first_after_fused)
        np.testing.assert_array_equal(
            optimizer._second_moment[1], optimizer._second_moment_flat[-1:]
        )
