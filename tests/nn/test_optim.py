"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Conv2d, Linear, ReLU, Sequential, Tensor, l1_loss, mse_loss
from repro.nn.modules import Parameter


def _quadratic_problem():
    """A single parameter whose optimum is at 3.0."""
    parameter = Parameter(np.array([0.0]))

    def loss_fn():
        return mse_loss(parameter * 1.0, np.array([3.0]))

    return parameter, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter, loss_fn = _quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        parameter_plain, loss_plain = _quadratic_problem()
        parameter_momentum, loss_momentum = _quadratic_problem()
        plain = SGD([parameter_plain], learning_rate=0.01)
        momentum = SGD([parameter_momentum], learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            for optimizer, loss_fn in ((plain, loss_plain), (momentum, loss_momentum)):
                optimizer.zero_grad()
                loss_fn().backward()
                optimizer.step()
        assert abs(parameter_momentum.data[0] - 3.0) < abs(parameter_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], learning_rate=0.5)
        optimizer.step()  # no gradient accumulated yet
        assert parameter.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter, loss_fn = _quadratic_problem()
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_trains_small_conv_net(self, rng):
        # Fit y = 2x with a two-layer conv net; the loss must drop clearly.
        network = Sequential(
            Conv2d(1, 4, kernel_size=3, seed=0), ReLU(), Conv2d(4, 1, kernel_size=3, seed=1)
        )
        optimizer = Adam(network.parameters(), learning_rate=1e-2)
        inputs = rng.random((8, 1, 6, 6))
        targets = 2.0 * inputs
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = l1_loss(network(Tensor(inputs)), targets)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.4 * first_loss

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_linear_regression_recovers_weights(self, rng):
        true_weight = np.array([[2.0, -1.0]])
        layer = Linear(2, 1, seed=0)
        optimizer = Adam(layer.parameters(), learning_rate=5e-2)
        inputs = rng.standard_normal((64, 2))
        targets = inputs @ true_weight.T
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(layer(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)
