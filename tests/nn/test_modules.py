"""Tests for repro.nn.modules (module system, layers, state dicts)."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    ConvTranspose2d,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(1, 2, kernel_size=3, seed=0)
        self.head = Sequential(ReLU(), Conv2d(2, 1, kernel_size=3, seed=1))

    def forward(self, x):
        return self.head(self.conv(x))


class TestModuleRegistration:
    def test_parameters_collected_recursively(self):
        model = _ToyModel()
        names = [name for name, _ in model.named_parameters()]
        assert "conv.weight" in names
        assert "head.layer1.weight" in names
        assert len(model.parameters()) == 4  # two convs, each weight + bias

    def test_num_parameters_counts_scalars(self):
        layer = Conv2d(1, 2, kernel_size=3, seed=0)
        assert layer.num_parameters() == 2 * 1 * 9 + 2

    def test_zero_grad_clears(self):
        model = _ToyModel()
        output = model(Tensor(np.random.default_rng(0).random((1, 1, 6, 6))))
        output.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_flags(self):
        model = _ToyModel()
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())


class TestStateDict:
    def test_roundtrip(self):
        model_a = _ToyModel()
        model_b = _ToyModel()
        # Perturb B so the load actually changes something.
        for parameter in model_b.parameters():
            parameter.data = parameter.data + 1.0
        model_b.load_state_dict(model_a.state_dict())
        for (name_a, param_a), (name_b, param_b) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_is_a_copy(self):
        model = _ToyModel()
        state = model.state_dict()
        state["conv.weight"][...] = 99.0
        assert not np.allclose(model.conv.weight.data, 99.0)

    def test_missing_key_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        state.pop("conv.weight")
        with pytest.raises(ValueError, match="missing"):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(ValueError, match="unexpected"):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        state["conv.weight"] = np.zeros((1, 1, 3, 3))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestLayers:
    def test_linear_shapes_and_bias(self, rng):
        layer = Linear(4, 3, seed=0)
        output = layer(Tensor(rng.standard_normal((5, 4))))
        assert output.shape == (5, 3)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_relu_module(self):
        assert ReLU()(Tensor([-1.0, 1.0])).data.tolist() == [0.0, 1.0]

    def test_identity(self, rng):
        array = rng.standard_normal((2, 2))
        np.testing.assert_allclose(Identity()(Tensor(array)).data, array)

    def test_sequential_iteration_and_len(self):
        seq = Sequential(ReLU(), Identity())
        assert len(seq) == 2
        assert len(list(iter(seq))) == 2

    def test_conv_same_seed_same_weights(self):
        a = Conv2d(2, 3, seed=7)
        b = Conv2d(2, 3, seed=7)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_conv_different_seed_different_weights(self):
        a = Conv2d(2, 3, seed=1)
        b = Conv2d(2, 3, seed=2)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_conv_rejects_bad_padding_mode(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, padding_mode="reflect")

    def test_parameter_is_tensor_with_grad(self):
        parameter = Parameter(np.zeros(3))
        assert parameter.requires_grad


class TestFreeze:
    def test_freeze_disables_gradients_and_training(self):
        model = _ToyModel()
        frozen = model.freeze()
        assert frozen is model
        assert all(not p.requires_grad for p in model.parameters())
        assert all(not m.training for m in model.modules())

    def test_frozen_forward_records_no_graph(self, rng):
        model = _ToyModel().freeze()
        output = model(Tensor(rng.random((1, 1, 6, 6))))
        assert not output.requires_grad

    def test_unfreeze_restores_training(self):
        model = _ToyModel().freeze().unfreeze()
        assert all(p.requires_grad for p in model.parameters())
        assert all(m.training for m in model.modules())
