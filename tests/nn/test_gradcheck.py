"""Property-based gradient checks: seeded random shapes, no new deps.

Each test draws its shapes and data from a seeded RNG and compares the
autograd tape's gradients against central finite differences, so every CI
run re-verifies the adjoints on a different — but reproducible — family of
problems.  Covers the convolution ops, the three losses, the model subnets,
and the ragged length-bucketing path of ``forward_batch`` (the one the
batched training engine differentiates through).
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import check_input_gradient, numerical_gradient
from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.core.subnets import CurrentFusionNet, DistanceReductionNet, NoisePredictionNet
from repro.nn import Conv2d, ConvTranspose2d, Tensor, huber_loss, l1_loss, mse_loss
from repro.nn.tensor import record_graph

#: Seeds drawn per property; each seed yields a different random problem.
SEEDS = (0, 1, 2)

#: Loose-but-honest tolerances for second-order central differences.
RTOL, ATOL = 1e-4, 1e-6


def _random_shape(rng: np.random.Generator) -> tuple[int, int, int, int]:
    """A random NCHW shape small enough for exhaustive finite differences."""
    return (
        int(rng.integers(1, 3)),
        int(rng.integers(1, 4)),
        int(rng.integers(4, 8)),
        int(rng.integers(4, 8)),
    )


class TestConvGradients:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("padding_mode", ["replicate", "zeros"])
    def test_conv2d_input_gradient_random_shapes(self, seed, padding_mode):
        rng = np.random.default_rng(seed)
        batch, channels, height, width = _random_shape(rng)
        layer = Conv2d(
            channels, int(rng.integers(1, 4)), kernel_size=3, padding=1,
            padding_mode=padding_mode, seed=seed,
        )
        check_input_gradient(
            layer, rng.standard_normal((batch, channels, height, width)),
            rtol=RTOL, atol=ATOL,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conv2d_parameter_gradients_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        batch, channels, height, width = _random_shape(rng)
        layer = Conv2d(channels, 2, kernel_size=3, padding=1, seed=seed)
        inputs = rng.standard_normal((batch, channels, height, width))
        weights = rng.standard_normal(layer(Tensor(inputs)).shape)

        layer.zero_grad()
        objective = (layer(Tensor(inputs)) * weights).sum()
        objective.backward()
        for name, parameter in layer.named_parameters():
            numeric = numerical_gradient(
                lambda: float((layer(Tensor(inputs)) * weights).sum().data),
                parameter.data,
            )
            np.testing.assert_allclose(
                parameter.grad, numeric, rtol=RTOL, atol=ATOL, err_msg=f"parameter {name}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conv_transpose2d_input_gradient_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        batch, channels, height, width = _random_shape(rng)
        layer = ConvTranspose2d(channels, int(rng.integers(1, 3)), seed=seed)
        check_input_gradient(
            layer, rng.standard_normal((batch, channels, height, width)),
            rtol=RTOL, atol=ATOL,
        )


class TestLossGradients:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("loss", [l1_loss, mse_loss, huber_loss])
    def test_loss_prediction_gradient_random_shapes(self, seed, loss):
        # Random predictions/targets never tie exactly, so the L1/Huber kinks
        # are avoided with probability 1 and central differences are valid.
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(2, 6)) for _ in range(int(rng.integers(1, 4))))
        target = rng.standard_normal(shape)
        prediction = rng.standard_normal(shape)

        tensor = Tensor(prediction, requires_grad=True)
        loss(tensor, target).backward()
        numeric = numerical_gradient(
            lambda: float(loss(Tensor(prediction), target).data), prediction
        )
        np.testing.assert_allclose(tensor.grad, numeric, rtol=RTOL, atol=ATOL)


class TestSubnetGradients:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_distance_subnet_input_gradient(self, seed):
        rng = np.random.default_rng(seed)
        bumps = int(rng.integers(2, 5))
        height, width = int(rng.integers(4, 8)), int(rng.integers(4, 8))
        subnet = DistanceReductionNet(
            num_bumps=bumps, hidden_channels=2, depth=1, seed=seed
        )
        check_input_gradient(
            lambda t: subnet(t.reshape(1, bumps, height, width)),
            rng.random((bumps, height, width)) + 0.1,
            rtol=RTOL, atol=ATOL,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fusion_subnet_input_gradient(self, seed):
        rng = np.random.default_rng(seed)
        stamps = int(rng.integers(2, 5))
        height, width = int(rng.integers(4, 7)), int(rng.integers(4, 7))
        subnet = CurrentFusionNet(hidden_channels=2, seed=seed)
        check_input_gradient(
            lambda t: subnet(t.reshape(stamps, 1, height, width)),
            rng.random((stamps, height, width)),
            rtol=RTOL, atol=ATOL,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_prediction_subnet_input_gradient(self, seed):
        rng = np.random.default_rng(seed)
        height, width = int(rng.integers(4, 8)), int(rng.integers(4, 8))
        subnet = NoisePredictionNet(hidden_channels=2, depth=1, seed=seed)
        check_input_gradient(
            lambda t: subnet(t.reshape(1, 4, height, width)),
            rng.standard_normal((4, height, width)),
            rtol=RTOL, atol=ATOL,
        )


class TestForwardBatchGradients:
    """The batched training path, including ragged length-bucketing."""

    @staticmethod
    def _tiny_model(seed: int) -> WorstCaseNoiseNet:
        config = ModelConfig(
            distance_kernels=2, fusion_kernels=2, prediction_kernels=2,
            distance_depth=1, prediction_depth=1, seed=seed,
        )
        return WorstCaseNoiseNet(num_bumps=2, config=config)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dense_batch_input_gradient(self, seed):
        rng = np.random.default_rng(seed)
        model = self._tiny_model(seed)
        batch, stamps = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        height, width = int(rng.integers(4, 7)), int(rng.integers(4, 7))
        distance = rng.random((2, height, width)) + 0.1
        currents = rng.random((batch, stamps, height, width))
        weights = rng.standard_normal((batch, height, width))

        def objective(array: np.ndarray) -> float:
            with record_graph():
                return float(
                    (model.forward_batch(Tensor(array), distance) * weights).sum().data
                )

        tensor = Tensor(currents.copy(), requires_grad=True)
        with record_graph():
            loss = (model.forward_batch(tensor, distance) * weights).sum()
            loss.backward()
        numeric = numerical_gradient(lambda: objective(currents), currents)
        np.testing.assert_allclose(tensor.grad, numeric, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ragged_batch_input_gradient(self, seed):
        # Distinct stamp counts force the length-bucketing gather; the
        # gradient must flow back into each ragged member individually.
        rng = np.random.default_rng(seed)
        model = self._tiny_model(seed)
        height, width = int(rng.integers(4, 7)), int(rng.integers(4, 7))
        distance = rng.random((2, height, width)) + 0.1
        stamp_counts = [2, 3, 5]
        ragged = [rng.random((count, height, width)) for count in stamp_counts]
        weights = rng.standard_normal((len(ragged), height, width))
        probe = int(rng.integers(0, len(ragged)))

        tensors = [Tensor(member.copy(), requires_grad=True) for member in ragged]
        with record_graph():
            loss = (model.forward_batch(tensors, distance) * weights).sum()
            loss.backward()

        def objective() -> float:
            with record_graph():
                members = [Tensor(member) for member in ragged]
                return float((model.forward_batch(members, distance) * weights).sum().data)

        numeric = numerical_gradient(objective, ragged[probe])
        assert tensors[probe].grad is not None
        np.testing.assert_allclose(tensors[probe].grad, numeric, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ragged_batch_parameter_gradients_match_dense(self, seed):
        # A ragged batch whose members happen to share a stamp count must
        # produce the same parameter gradients as the dense path.
        rng = np.random.default_rng(seed)
        height, width = 5, 4
        distance = rng.random((2, height, width)) + 0.1
        currents = rng.random((3, 4, height, width))
        weights = rng.standard_normal((3, height, width))

        grads = []
        for batch in (currents, [currents[i] for i in range(len(currents))]):
            model = self._tiny_model(seed)
            model.zero_grad()
            with record_graph():
                loss = (model.forward_batch(batch, distance) * weights).sum()
                loss.backward()
            grads.append([p.grad.copy() for p in model.parameters()])
        for dense, ragged in zip(*grads):
            np.testing.assert_allclose(ragged, dense, rtol=1e-9, atol=1e-12)
