"""Tests for repro.nn.conv (im2col, Conv2d, ConvTranspose2d)."""

import numpy as np
import pytest

from repro.nn import Tensor, conv2d, conv_transpose2d, conv_output_size, conv_transpose_output_size
from repro.nn.conv import col2im, im2col, pad_input, unpad_gradient
from repro.nn.modules import Conv2d, ConvTranspose2d
from tests.nn.gradcheck import check_input_gradient, check_parameter_gradient


class TestPadding:
    def test_zero_padding_values(self):
        x = np.ones((1, 1, 2, 2))
        padded = pad_input(x, 1, "zeros")
        assert padded.shape == (1, 1, 4, 4)
        assert padded[0, 0, 0, 0] == 0.0
        assert padded[0, 0, 1, 1] == 1.0

    def test_replicate_padding_values(self):
        x = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        padded = pad_input(x, 1, "replicate")
        assert padded[0, 0, 0, 0] == x[0, 0, 0, 0]
        assert padded[0, 0, -1, -1] == x[0, 0, -1, -1]

    def test_zero_padding_is_a_no_op_for_zero_pad(self):
        x = np.ones((1, 1, 3, 3))
        assert pad_input(x, 0, "zeros") is x

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            pad_input(np.ones((1, 1, 2, 2)), 1, "reflect")

    def test_unpad_is_adjoint_of_pad(self, rng):
        # <pad(x), y> == <x, unpad(y)> for both padding modes.
        x = rng.standard_normal((2, 3, 4, 5))
        for mode in ("zeros", "replicate"):
            y = rng.standard_normal((2, 3, 6, 7))
            left = np.sum(pad_input(x, 1, mode) * y)
            right = np.sum(x * unpad_gradient(y, 1, mode))
            assert left == pytest.approx(right, rel=1e-12)


class TestIm2Col:
    def test_roundtrip_adjoint(self, rng):
        # <im2col(x), c> == <x, col2im(c)>.
        x = rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, kernel=3, stride=1)
        c = rng.standard_normal(cols.shape)
        left = np.sum(cols * c)
        right = np.sum(x * col2im(c, x.shape, kernel=3, stride=1))
        assert left == pytest.approx(right, rel=1e-12)

    def test_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 10))
        cols = im2col(x, kernel=3, stride=2)
        out_h = (8 - 3) // 2 + 1
        out_w = (10 - 3) // 2 + 1
        assert cols.shape == (2, 3 * 9, out_h * out_w)

    def test_identity_kernel_convolution(self, rng):
        # A 1x1 convolution with identity weights reproduces the input.
        x = rng.standard_normal((1, 2, 4, 4))
        weight = np.zeros((2, 2, 1, 1))
        weight[0, 0, 0, 0] = 1.0
        weight[1, 1, 0, 0] = 1.0
        output = conv2d(Tensor(x), Tensor(weight), stride=1, padding=0)
        np.testing.assert_allclose(output.data, x)


class TestOutputSizes:
    def test_conv_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(9, 3, 2, 1) == 5

    def test_conv_transpose_output_size(self):
        assert conv_transpose_output_size(5, 4, 2, 1) == 10
        # Transposed conv inverts the downsampling size relation for even sizes.
        assert conv_transpose_output_size(conv_output_size(8, 3, 2, 1), 4, 2, 1) == 8


class TestConv2dGradients:
    @pytest.mark.parametrize("stride,padding,mode", [
        (1, 1, "zeros"),
        (1, 1, "replicate"),
        (2, 1, "replicate"),
        (1, 0, "zeros"),
        (2, 2, "zeros"),
    ])
    def test_input_gradient(self, stride, padding, mode, rng):
        x = rng.standard_normal((2, 3, 6, 7))
        layer = Conv2d(3, 4, kernel_size=3, stride=stride, padding=padding, padding_mode=mode, seed=0)
        check_input_gradient(lambda t: layer(t), x)

    def test_parameter_gradients(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        layer = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, padding_mode="replicate", seed=1)
        check_parameter_gradient(layer, lambda: layer(x))

    def test_matches_direct_convolution(self, rng):
        # Compare against a brute-force convolution for a tiny case.
        x = rng.standard_normal((1, 1, 4, 4))
        weight = rng.standard_normal((1, 1, 3, 3))
        output = conv2d(Tensor(x), Tensor(weight), stride=1, padding=0).data
        expected = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = np.sum(x[0, 0, i:i + 3, j:j + 3] * weight[0, 0])
        np.testing.assert_allclose(output, expected, rtol=1e-12)

    def test_bias_added_per_channel(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        weight = np.zeros((2, 1, 1, 1))
        bias = np.array([1.5, -2.0])
        output = conv2d(Tensor(x), Tensor(weight), Tensor(bias), stride=1, padding=0).data
        np.testing.assert_allclose(output[0, 0], 1.5)
        np.testing.assert_allclose(output[0, 1], -2.0)

    def test_wrong_channel_count_rejected(self, rng):
        layer = Conv2d(3, 4, seed=0)
        with pytest.raises(ValueError):
            layer(Tensor(rng.standard_normal((1, 2, 5, 5))))


class TestConvTranspose2dGradients:
    @pytest.mark.parametrize("stride,padding,kernel", [(2, 1, 4), (1, 1, 3), (2, 0, 2)])
    def test_input_gradient(self, stride, padding, kernel, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        layer = ConvTranspose2d(3, 2, kernel_size=kernel, stride=stride, padding=padding, seed=0)
        check_input_gradient(lambda t: layer(t), x)

    def test_parameter_gradients(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 3, 3)))
        layer = ConvTranspose2d(2, 2, kernel_size=4, stride=2, padding=1, seed=1)
        check_parameter_gradient(layer, lambda: layer(x))

    def test_upsamples_by_stride(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 7)))
        layer = ConvTranspose2d(2, 3, kernel_size=4, stride=2, padding=1, seed=2)
        assert layer(x).shape == (1, 3, 10, 14)

    def test_adjoint_of_convolution(self, rng):
        # conv_transpose with weight W is the adjoint of conv with weight W
        # (swapped in/out channels): <conv(x), y> == <x, conv_T(y)>.
        x = rng.standard_normal((1, 2, 8, 8))
        y = rng.standard_normal((1, 3, 4, 4))
        weight = rng.standard_normal((3, 2, 4, 4))  # conv: 2 -> 3 channels
        conv_out = conv2d(Tensor(x), Tensor(weight), stride=2, padding=1).data
        # conv_transpose uses the (in, out, k, k) layout, which for the adjoint
        # of the convolution above is exactly the same weight array.
        transpose_out = conv_transpose2d(Tensor(y), Tensor(weight), stride=2, padding=1).data
        assert np.sum(conv_out * y) == pytest.approx(np.sum(x * transpose_out), rel=1e-9)

    def test_wrong_channel_count_rejected(self, rng):
        layer = ConvTranspose2d(3, 4, seed=0)
        with pytest.raises(ValueError):
            layer(Tensor(rng.standard_normal((1, 2, 5, 5))))
