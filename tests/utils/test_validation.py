"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
    check_shape,
)


class TestCheckFinite:
    def test_passes_finite(self):
        array = np.array([1.0, 2.0])
        assert check_finite(array, "x") is not None

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="x contains"):
            check_finite(np.array([1.0, np.nan]), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]), "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "v") == 0.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "v")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "v", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "v", strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0) == 1.0

    def test_exclusive_bounds_reject_edge(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, 1.0, 2.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(3.0, 0.0, 2.0)


class TestCheckShape:
    def test_exact_shape(self):
        check_shape(np.zeros((2, 3)), (2, 3))

    def test_wildcard(self):
        check_shape(np.zeros((5, 3)), (None, 3))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((2,)), (2, 3))

    def test_wrong_size(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros((2, 4)), (2, 3), name="arr")


class TestCheckSameLength:
    def test_matching(self):
        assert check_same_length({"a": [1, 2], "b": (3, 4)}) == 2

    def test_mismatch(self):
        with pytest.raises(ValueError):
            check_same_length({"a": [1], "b": [1, 2]})

    def test_empty(self):
        assert check_same_length({}) == 0


class TestCheckNonNegative:
    def test_zero_allowed(self):
        assert check_non_negative(0.0) == 0.0

    def test_positive_allowed(self):
        assert check_non_negative(1.5) == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            check_non_negative(-0.1, name="threshold")
