"""Tests for repro.utils.logging."""

import logging

from repro.utils.logging import get_logger


def test_logger_lives_under_repro_namespace():
    assert get_logger("something").name == "repro.something"


def test_repro_prefixed_name_unchanged():
    assert get_logger("repro.sim").name == "repro.sim"


def test_root_has_single_handler_after_repeated_calls():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
