"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9, 10)
        b = ensure_rng(2).integers(0, 10**9, 10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [rng.random(5).tolist() for rng in rngs]
        assert draws[0] != draws[1] and draws[1] != draws[2]

    def test_reproducible(self):
        first = [rng.random(3).tolist() for rng in spawn_rngs(5, 2)]
        second = [rng.random(3).tolist() for rng in spawn_rngs(5, 2)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
