"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_measures_elapsed(self):
        timer = Timer()
        with timer.measure():
            time.sleep(0.01)
        assert timer.last >= 0.005
        assert timer.total >= timer.last
        assert timer.count == 1

    def test_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure():
                pass
        assert timer.count == 3
        assert timer.mean <= timer.total

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.total == 0.0 and timer.count == 0 and timer.last == 0.0

    def test_mean_of_empty_timer_is_zero(self):
        assert Timer().mean == 0.0


class TestTimed:
    def test_returns_value_and_elapsed(self):
        result, elapsed = timed(lambda x: x * 2)(21)
        assert result == 42
        assert elapsed >= 0.0

    def test_preserves_name(self):
        def my_function():
            return 1

        assert timed(my_function).__name__ == "my_function"
