"""Tests for repro.pdn.loads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.geometry import DieArea
from repro.pdn.loads import generate_load_placement


class TestGenerateLoadPlacement:
    def test_counts_and_total_current(self):
        die = DieArea(1000.0, 1000.0)
        placement = generate_load_placement(die, num_loads=100, total_current=5.0, seed=0)
        assert placement.num_loads == 100
        assert placement.total_nominal_current == pytest.approx(5.0)

    def test_locations_inside_die(self):
        die = DieArea(500.0, 300.0)
        placement = generate_load_placement(die, 200, 1.0, seed=1)
        assert placement.locations[:, 0].min() >= 0
        assert placement.locations[:, 0].max() <= die.width
        assert placement.locations[:, 1].max() <= die.height

    def test_cluster_assignment(self):
        die = DieArea(1000.0, 1000.0)
        placement = generate_load_placement(
            die, 100, 1.0, num_clusters=3, cluster_fraction=0.5, seed=2
        )
        assert placement.num_clusters <= 3
        clustered = np.count_nonzero(placement.cluster_id >= 0)
        assert clustered == 50

    def test_zero_cluster_fraction_gives_background_only(self):
        die = DieArea(100.0, 100.0)
        placement = generate_load_placement(die, 50, 1.0, cluster_fraction=0.0, seed=0)
        assert placement.num_clusters == 0
        assert np.all(placement.cluster_id == -1)

    def test_reproducible(self):
        die = DieArea(100.0, 100.0)
        a = generate_load_placement(die, 30, 1.0, seed=5)
        b = generate_load_placement(die, 30, 1.0, seed=5)
        np.testing.assert_allclose(a.locations, b.locations)
        np.testing.assert_allclose(a.nominal_currents, b.nominal_currents)

    def test_currents_positive(self):
        die = DieArea(100.0, 100.0)
        placement = generate_load_placement(die, 80, 2.0, seed=3)
        assert np.all(placement.nominal_currents > 0)

    def test_rejects_bad_arguments(self):
        die = DieArea(100.0, 100.0)
        with pytest.raises(ValueError):
            generate_load_placement(die, 0, 1.0)
        with pytest.raises(ValueError):
            generate_load_placement(die, 10, -1.0)
        with pytest.raises(ValueError):
            generate_load_placement(die, 10, 1.0, cluster_fraction=1.5)
        with pytest.raises(ValueError):
            generate_load_placement(die, 10, 1.0, num_clusters=-1)

    @given(
        num_loads=st.integers(1, 300),
        total=st.floats(0.1, 50.0),
        fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_current_always_preserved(self, num_loads, total, fraction, seed):
        die = DieArea(200.0, 200.0)
        placement = generate_load_placement(
            die, num_loads, total, cluster_fraction=fraction, seed=seed
        )
        assert placement.total_nominal_current == pytest.approx(total, rel=1e-9)
        assert placement.num_loads == num_loads
