"""Tests for repro.pdn.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.geometry import (
    DieArea,
    TileGrid,
    distance_to_bumps,
    jittered_bump_array,
    perimeter_bump_array,
    uniform_bump_array,
)


class TestDieArea:
    def test_area(self):
        assert DieArea(100.0, 200.0).area == pytest.approx(20000.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DieArea(0.0, 10.0)
        with pytest.raises(ValueError):
            DieArea(10.0, -1.0)

    def test_contains(self):
        die = DieArea(100.0, 50.0)
        assert die.contains(0.0, 0.0)
        assert die.contains(100.0, 50.0)
        assert not die.contains(101.0, 10.0)
        assert not die.contains(10.0, -0.1)

    def test_grid_points_inside_die(self):
        die = DieArea(100.0, 60.0)
        xs, ys = die.grid_points(5, 3)
        assert xs.shape == (5,) and ys.shape == (3,)
        assert xs.min() > 0 and xs.max() < die.width
        assert ys.min() > 0 and ys.max() < die.height

    def test_grid_points_rejects_zero(self):
        with pytest.raises(ValueError):
            DieArea(10, 10).grid_points(0, 3)


class TestTileGrid:
    def test_shape_and_counts(self):
        grid = TileGrid(DieArea(100.0, 80.0), m=4, n=5)
        assert grid.shape == (4, 5)
        assert grid.num_tiles == 20
        assert grid.tile_width == pytest.approx(20.0)
        assert grid.tile_height == pytest.approx(20.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TileGrid(DieArea(10, 10), 0, 3)

    def test_tile_of_far_edge_clamped(self):
        grid = TileGrid(DieArea(100.0, 100.0), 10, 10)
        row, col = grid.tile_of(np.array([100.0]), np.array([100.0]))
        assert row[0] == 9 and col[0] == 9

    def test_tile_of_matches_manual_partition(self):
        grid = TileGrid(DieArea(100.0, 100.0), 4, 4)
        row, col = grid.tile_of(np.array([30.0]), np.array([60.0]))
        assert (row[0], col[0]) == (2, 1)

    def test_flat_index_roundtrip(self):
        grid = TileGrid(DieArea(10, 10), 3, 7)
        rows, cols = np.meshgrid(np.arange(3), np.arange(7), indexing="ij")
        flat = grid.flat_index(rows.ravel(), cols.ravel())
        assert sorted(flat.tolist()) == list(range(21))

    def test_tile_centers_shape_and_bounds(self):
        grid = TileGrid(DieArea(100.0, 50.0), 5, 10)
        centers = grid.tile_centers()
        assert centers.shape == (5, 10, 2)
        assert centers[..., 0].max() < 100.0 and centers[..., 1].max() < 50.0

    def test_iter_tiles_covers_all(self):
        grid = TileGrid(DieArea(10, 10), 2, 3)
        assert len(list(grid.iter_tiles())) == 6

    def test_aggregate_sum_conserves_total(self, rng):
        grid = TileGrid(DieArea(100.0, 100.0), 6, 6)
        x = rng.uniform(0, 100, 200)
        y = rng.uniform(0, 100, 200)
        values = rng.random(200)
        summed = grid.aggregate(x, y, values, reduce="sum")
        assert summed.shape == (6, 6)
        assert summed.sum() == pytest.approx(values.sum())

    def test_aggregate_count(self, rng):
        grid = TileGrid(DieArea(10.0, 10.0), 2, 2)
        x = rng.uniform(0, 10, 50)
        y = rng.uniform(0, 10, 50)
        counts = grid.aggregate(x, y, np.ones(50), reduce="count")
        assert counts.sum() == pytest.approx(50)

    def test_aggregate_max(self):
        grid = TileGrid(DieArea(10.0, 10.0), 1, 2)
        x = np.array([1.0, 2.0, 8.0])
        y = np.array([5.0, 5.0, 5.0])
        out = grid.aggregate(x, y, np.array([3.0, 7.0, 2.0]), reduce="max")
        assert out[0, 0] == 7.0 and out[0, 1] == 2.0

    def test_aggregate_unknown_mode(self):
        grid = TileGrid(DieArea(10, 10), 2, 2)
        with pytest.raises(ValueError):
            grid.aggregate(np.array([1.0]), np.array([1.0]), np.array([1.0]), reduce="median")

    @given(
        m=st.integers(1, 12),
        n=st.integers(1, 12),
        num_points=st.integers(1, 60),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_point_maps_to_valid_tile(self, m, n, num_points, seed):
        grid = TileGrid(DieArea(123.0, 77.0), m, n)
        generator = np.random.default_rng(seed)
        x = generator.uniform(0, 123.0, num_points)
        y = generator.uniform(0, 77.0, num_points)
        row, col = grid.tile_of(x, y)
        assert np.all((row >= 0) & (row < m))
        assert np.all((col >= 0) & (col < n))


class TestBumpArrays:
    def test_uniform_count_and_bounds(self):
        die = DieArea(100.0, 100.0)
        bumps = uniform_bump_array(die, 4, 5)
        assert bumps.shape == (20, 2)
        assert bumps.min() >= 0 and bumps[:, 0].max() <= die.width

    def test_uniform_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            uniform_bump_array(DieArea(10, 10), 2, 2, margin_fraction=0.6)

    def test_perimeter_on_boundary_ring(self):
        die = DieArea(100.0, 100.0)
        bumps = perimeter_bump_array(die, 12, inset_fraction=0.1)
        assert bumps.shape == (12, 2)
        # All bumps lie on the inset rectangle ring.
        on_ring = (
            np.isclose(bumps[:, 0], 10.0) | np.isclose(bumps[:, 0], 90.0)
            | np.isclose(bumps[:, 1], 10.0) | np.isclose(bumps[:, 1], 90.0)
        )
        assert on_ring.all()

    def test_perimeter_needs_four(self):
        with pytest.raises(ValueError):
            perimeter_bump_array(DieArea(10, 10), 3)

    def test_jittered_reproducible_and_in_bounds(self):
        die = DieArea(100.0, 100.0)
        a = jittered_bump_array(die, 3, 3, seed=7)
        b = jittered_bump_array(die, 3, 3, seed=7)
        np.testing.assert_allclose(a, b)
        assert a[:, 0].min() >= 0 and a[:, 0].max() <= 100.0

    def test_jittered_differs_from_uniform(self):
        die = DieArea(100.0, 100.0)
        uniform = uniform_bump_array(die, 3, 3)
        jittered = jittered_bump_array(die, 3, 3, jitter_fraction=0.2, seed=1)
        assert not np.allclose(uniform, jittered)


class TestDistanceToBumps:
    def test_shape(self):
        grid = TileGrid(DieArea(100.0, 100.0), 4, 6)
        bumps = np.array([[10.0, 10.0], [90.0, 90.0]])
        distance = distance_to_bumps(grid, bumps)
        assert distance.shape == (2, 4, 6)

    def test_zero_distance_at_bump_tile_center(self):
        grid = TileGrid(DieArea(100.0, 100.0), 2, 2)
        centers = grid.tile_centers()
        bumps = centers.reshape(-1, 2)[:1]
        distance = distance_to_bumps(grid, bumps)
        assert distance.min() == pytest.approx(0.0)

    def test_values_match_manual_euclidean(self):
        grid = TileGrid(DieArea(10.0, 10.0), 1, 1)
        bumps = np.array([[0.0, 0.0]])
        distance = distance_to_bumps(grid, bumps)
        assert distance[0, 0, 0] == pytest.approx(np.hypot(5.0, 5.0))

    def test_rejects_bad_shape(self):
        grid = TileGrid(DieArea(10.0, 10.0), 2, 2)
        with pytest.raises(ValueError):
            distance_to_bumps(grid, np.zeros((3, 3)))
