"""Tests for repro.pdn.package."""

import numpy as np
import pytest

from repro.pdn.package import PackageModel, default_package_for


class TestPackageModel:
    def test_defaults_valid(self):
        package = PackageModel()
        assert package.bump_resistance > 0
        assert package.bump_inductance > 0

    def test_rejects_negative_bulk(self):
        with pytest.raises(ValueError):
            PackageModel(bulk_decap=-1.0)

    def test_rejects_zero_inductance(self):
        with pytest.raises(ValueError):
            PackageModel(bump_inductance=0.0)

    def test_resonance_frequency_formula(self):
        package = PackageModel(bump_inductance=1e-9)
        c = 1e-9
        expected = 1.0 / (2 * np.pi * np.sqrt(1e-9 * c))
        assert package.resonance_frequency(c) == pytest.approx(expected)

    def test_resonance_decreases_with_decap(self):
        package = PackageModel()
        assert package.resonance_frequency(1e-9) < package.resonance_frequency(1e-10)

    def test_effective_inductance_parallel(self):
        package = PackageModel(bump_inductance=40e-12)
        assert package.effective_inductance(4) == pytest.approx(10e-12)

    def test_effective_resistance_parallel(self):
        package = PackageModel(bump_resistance=40e-3)
        assert package.effective_resistance(8) == pytest.approx(5e-3)

    def test_effective_values_reject_zero_bumps(self):
        with pytest.raises(ValueError):
            PackageModel().effective_inductance(0)
        with pytest.raises(ValueError):
            PackageModel().effective_resistance(0)


class TestDefaultPackageFor:
    def test_bulk_scales_with_area(self):
        small = default_package_for(16, 1e6)
        large = default_package_for(16, 4e6)
        assert large.bulk_decap == pytest.approx(4 * small.bulk_decap)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            default_package_for(0, 1e6)
        with pytest.raises(ValueError):
            default_package_for(4, -1.0)
