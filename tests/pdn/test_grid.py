"""Tests for repro.pdn.grid."""

import numpy as np
import pytest

from repro.pdn.geometry import DieArea, TileGrid, uniform_bump_array
from repro.pdn.grid import (
    GridLayer,
    build_power_grid,
    load_tile_indices,
    node_tile_indices,
)


@pytest.fixture()
def simple_grid():
    die = DieArea(100.0, 100.0)
    layers = [
        GridLayer("M1", nx=8, ny=8, sheet_resistance=0.01),
        GridLayer("M5", nx=4, ny=4, sheet_resistance=0.005),
    ]
    bumps = uniform_bump_array(die, 2, 2)
    loads = np.array([[10.0, 10.0], [50.0, 50.0], [90.0, 90.0]])
    return build_power_grid(die, layers, bumps, loads)


class TestGridLayer:
    def test_node_count(self):
        assert GridLayer("M1", 5, 7, 0.01).num_nodes == 35

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            GridLayer("M1", 1, 4, 0.01)

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            GridLayer("M1", 4, 4, 0.01, direction="diagonal")

    def test_rejects_non_positive_resistance(self):
        with pytest.raises(ValueError):
            GridLayer("M1", 4, 4, 0.0)


class TestBuildPowerGrid:
    def test_node_count_is_sum_of_layers(self, simple_grid):
        assert simple_grid.num_nodes == 8 * 8 + 4 * 4

    def test_bumps_attach_to_top_layer(self, simple_grid):
        top_nodes = simple_grid.layer_nodes(1)
        assert np.all(np.isin(simple_grid.bump_nodes, top_nodes))

    def test_loads_attach_to_bottom_layer(self, simple_grid):
        bottom_nodes = simple_grid.layer_nodes(0)
        assert np.all(np.isin(simple_grid.load_nodes, bottom_nodes))

    def test_resistances_positive(self, simple_grid):
        assert np.all(simple_grid.res_value > 0)

    def test_capacitance_covers_all_nodes(self, simple_grid):
        assert simple_grid.cap_value.shape == (simple_grid.num_nodes,)
        assert np.all(simple_grid.cap_value > 0)

    def test_resistor_endpoints_valid(self, simple_grid):
        assert simple_grid.res_a.min() >= 0
        assert simple_grid.res_b.max() < simple_grid.num_nodes
        assert np.all(simple_grid.res_a != simple_grid.res_b)

    def test_vias_connect_adjacent_layers(self, simple_grid):
        layer_of = simple_grid.node_layer
        crossing = layer_of[simple_grid.res_a] != layer_of[simple_grid.res_b]
        # Upper layer has 16 nodes and each gets one via bundle.
        assert int(np.count_nonzero(crossing)) == 16

    def test_mesh_connectivity_is_connected(self, simple_grid):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(simple_grid.num_nodes))
        graph.add_edges_from(zip(simple_grid.res_a.tolist(), simple_grid.res_b.tolist()))
        assert nx.is_connected(graph)

    def test_summary_keys(self, simple_grid):
        summary = simple_grid.summary()
        assert summary["num_nodes"] == simple_grid.num_nodes
        assert summary["num_bumps"] == 4
        assert summary["num_loads"] == 3

    def test_requires_a_layer(self):
        die = DieArea(10, 10)
        with pytest.raises(ValueError):
            build_power_grid(die, [], np.array([[5.0, 5.0]]), np.array([[5.0, 5.0]]))

    def test_rejects_bad_bump_shape(self):
        die = DieArea(10, 10)
        layers = [GridLayer("M1", 4, 4, 0.01)]
        with pytest.raises(ValueError):
            build_power_grid(die, layers, np.zeros((2, 3)), np.array([[5.0, 5.0]]))

    def test_directional_layers_have_fewer_resistors(self):
        die = DieArea(100.0, 100.0)
        bumps = np.array([[50.0, 50.0]])
        loads = np.array([[50.0, 50.0]])
        both = build_power_grid(die, [GridLayer("M1", 6, 6, 0.01, "both")], bumps, loads)
        horizontal = build_power_grid(
            die, [GridLayer("M1", 6, 6, 0.01, "horizontal")], bumps, loads
        )
        assert horizontal.num_resistors < both.num_resistors

    def test_load_decap_added_at_load_nodes(self):
        die = DieArea(100.0, 100.0)
        layers = [GridLayer("M1", 6, 6, 0.01)]
        bumps = np.array([[50.0, 50.0]])
        loads = np.array([[10.0, 10.0]])
        with_decap = build_power_grid(die, layers, bumps, loads, load_decap=1e-12)
        without = build_power_grid(die, layers, bumps, loads, load_decap=0.0)
        node = with_decap.load_nodes[0]
        assert with_decap.cap_value[node] > without.cap_value[node]


class TestTileIndices:
    def test_load_tile_indices_range(self, simple_grid):
        tile_grid = TileGrid(simple_grid.die, 4, 4)
        indices = load_tile_indices(simple_grid, tile_grid)
        assert indices.shape == (simple_grid.num_loads,)
        assert indices.min() >= 0 and indices.max() < 16

    def test_node_tile_indices_cover_tiles(self, simple_grid):
        tile_grid = TileGrid(simple_grid.die, 4, 4)
        indices = node_tile_indices(simple_grid, tile_grid)
        # With an 8x8 bottom mesh over a 4x4 tile grid every tile holds nodes.
        assert set(indices.tolist()) == set(range(16))
