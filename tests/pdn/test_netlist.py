"""Tests for repro.pdn.netlist (SPICE export / import round trip)."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pdn import build_mna, netlist_to_string, read_netlist, write_netlist
from repro.pdn.netlist import Netlist
from repro.pdn.stamps import REFERENCE_NODE, assemble_conductance


class TestWriteNetlist:
    def test_contains_all_element_types(self, tiny_design):
        text = netlist_to_string(tiny_design.mna, tiny_design.loads.nominal_currents)
        assert text.startswith("*")
        assert ".end" in text
        for prefix in ("R", "C", "L", "I"):
            assert any(line.startswith(prefix) for line in text.splitlines())

    def test_write_to_file(self, tiny_design, tmp_path):
        path = tmp_path / "grid.sp"
        write_netlist(tiny_design.mna, path)
        assert path.exists()
        assert path.read_text().endswith(".end\n")


class TestReadNetlist:
    def test_roundtrip_counts(self, tiny_design):
        mna = tiny_design.mna
        text = netlist_to_string(mna, tiny_design.loads.nominal_currents)
        parsed = read_netlist(io.StringIO(text))
        assert parsed.num_nodes == mna.num_nodes
        assert parsed.num_inductors == mna.num_inductors
        assert parsed.num_loads == mna.num_loads
        # Every positive capacitance becomes one card.
        assert parsed.num_capacitors == int(np.count_nonzero(mna.cap_diag > 0))

    def test_roundtrip_preserves_conductance_matrix(self, tiny_design):
        mna = tiny_design.mna
        text = netlist_to_string(mna)
        parsed = read_netlist(io.StringIO(text))
        rebuilt = assemble_conductance(
            parsed.num_nodes,
            np.array(parsed.res_a),
            np.array(parsed.res_b),
            1.0 / np.array(parsed.res_value),
        )
        difference = abs(rebuilt - mna.conductance).max()
        assert difference < 1e-6

    def test_rejects_malformed_card(self):
        with pytest.raises(ValueError):
            read_netlist(io.StringIO("R1 1 2\n.end\n"))

    def test_rejects_unknown_card(self):
        with pytest.raises(ValueError):
            read_netlist(io.StringIO("Q1 1 2 3.0\n.end\n"))

    def test_rejects_floating_capacitor(self):
        with pytest.raises(ValueError):
            read_netlist(io.StringIO("C1 1 2 1e-12\n.end\n"))

    def test_comments_and_blank_lines_ignored(self):
        text = "* comment\n\nR1 1 0 2.0\n.end\n"
        parsed = read_netlist(io.StringIO(text))
        assert parsed.num_resistors == 1
        assert parsed.res_b[0] == REFERENCE_NODE


class TestNetlistDataclass:
    def test_empty_counts(self):
        netlist = Netlist()
        assert netlist.num_resistors == 0
        assert netlist.num_capacitors == 0
        assert netlist.num_inductors == 0
        assert netlist.num_loads == 0
