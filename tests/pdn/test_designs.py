"""Tests for repro.pdn.designs."""

import numpy as np
import pytest

from repro.pdn import (
    DesignSpec,
    make_design,
    reference_design,
    reference_design_names,
    small_test_design,
)


class TestDesignSpec:
    def test_defaults_valid(self):
        spec = DesignSpec()
        assert spec.tile_shape == (32, 32)
        assert spec.hotspot_threshold == pytest.approx(0.1)
        assert spec.num_bumps == 64

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DesignSpec(die_width=0.0)
        with pytest.raises(ValueError):
            DesignSpec(total_current=-1.0)
        with pytest.raises(ValueError):
            DesignSpec(tile_rows=0)
        with pytest.raises(ValueError):
            DesignSpec(layers=())


class TestMakeDesign:
    def test_small_design_structure(self, tiny_design):
        assert tiny_design.num_nodes > 0
        assert tiny_design.num_loads == 48
        assert tiny_design.tile_grid.shape == (8, 8)
        assert tiny_design.load_tile_index.shape == (48,)
        assert tiny_design.node_tile_index.shape == (tiny_design.num_nodes,)

    def test_reproducible_from_seed(self):
        a = small_test_design(seed=9)
        b = small_test_design(seed=9)
        np.testing.assert_allclose(a.loads.locations, b.loads.locations)
        np.testing.assert_allclose(a.grid.bump_xy, b.grid.bump_xy)

    def test_different_seeds_differ(self):
        a = small_test_design(seed=1)
        b = small_test_design(seed=2)
        assert not np.allclose(a.loads.locations, b.loads.locations)

    def test_summary_fields(self, tiny_design):
        summary = tiny_design.summary()
        assert summary["name"] == "unit-test"
        assert summary["tile_grid"] == "8x8"
        assert summary["num_loads"] == 48


class TestReferenceDesigns:
    def test_names(self):
        assert reference_design_names() == ("D1", "D2", "D3", "D4")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            reference_design("D9", scale=0.1)

    def test_scaled_d1_structure(self):
        design = reference_design("D1", scale=0.2, seed=0)
        assert design.name == "D1"
        assert design.tile_grid.m >= 8
        assert design.num_loads >= 50
        assert design.mna.num_inductors == design.grid.num_bumps

    def test_full_scale_tile_grids_match_paper(self):
        # Only check the spec (building the full designs is expensive).
        from repro.pdn.designs import _reference_spec

        assert _reference_spec("D1", 1.0).tile_shape == (50, 50)
        assert _reference_spec("D2", 1.0).tile_shape == (130, 130)
        assert _reference_spec("D3", 1.0).tile_shape == (70, 50)
        assert _reference_spec("D4", 1.0).tile_shape == (180, 180)

    def test_scale_preserves_current_density(self):
        from repro.pdn.designs import _reference_spec

        full = _reference_spec("D1", 1.0)
        quarter = _reference_spec("D1", 0.5)
        full_density = full.total_current / (full.die_width * full.die_height)
        quarter_density = quarter.total_current / (quarter.die_width * quarter.die_height)
        assert quarter_density == pytest.approx(full_density, rel=1e-6)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            reference_design("D1", scale=0.0)

    def test_larger_designs_have_more_nodes(self):
        d1 = reference_design("D1", scale=0.15, seed=0)
        d4 = reference_design("D4", scale=0.15, seed=0)
        assert d4.num_nodes > d1.num_nodes
