"""Tests for repro.pdn.stamps (MNA assembly)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn import PackageModel, build_mna, small_test_design
from repro.pdn.stamps import REFERENCE_NODE, assemble_conductance


class TestAssembleConductance:
    def test_two_node_resistor(self):
        matrix = assemble_conductance(2, np.array([0]), np.array([1]), np.array([0.5]))
        dense = matrix.toarray()
        np.testing.assert_allclose(dense, [[0.5, -0.5], [-0.5, 0.5]])

    def test_reference_branch_only_touches_diagonal(self):
        matrix = assemble_conductance(
            2, np.array([1]), np.array([REFERENCE_NODE]), np.array([2.0])
        )
        dense = matrix.toarray()
        np.testing.assert_allclose(dense, [[0.0, 0.0], [0.0, 2.0]])

    def test_symmetry(self, rng):
        num_nodes = 20
        a = rng.integers(0, num_nodes, 50)
        b = rng.integers(-1, num_nodes, 50)
        keep = a != b
        g = rng.random(50) + 0.1
        matrix = assemble_conductance(num_nodes, a[keep], b[keep], g[keep])
        assert (matrix != matrix.T).nnz == 0

    def test_rejects_negative_conductance(self):
        with pytest.raises(ValueError):
            assemble_conductance(2, np.array([0]), np.array([1]), np.array([-1.0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            assemble_conductance(2, np.array([0, 1]), np.array([1]), np.array([1.0]))

    def test_empty_branches(self):
        matrix = assemble_conductance(3, np.array([], dtype=int), np.array([], dtype=int), np.array([]))
        assert matrix.nnz == 0

    @given(seed=st.integers(0, 500), num_nodes=st.integers(2, 15))
    @settings(max_examples=25, deadline=None)
    def test_row_sums_nonnegative(self, seed, num_nodes):
        # Row sums equal the conductance to the reference, hence >= 0.
        generator = np.random.default_rng(seed)
        count = 3 * num_nodes
        a = generator.integers(0, num_nodes, count)
        b = generator.integers(-1, num_nodes, count)
        keep = a != b
        g = generator.random(count)[keep] + 0.01
        matrix = assemble_conductance(num_nodes, a[keep], b[keep], g)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.all(row_sums >= -1e-12)


class TestBuildMna:
    def test_dimensions_with_package(self, tiny_design):
        mna = tiny_design.mna
        # Package adds one internal node per bump (plus ESR nodes for bulk decap).
        assert mna.num_nodes > mna.num_die_nodes
        assert mna.num_inductors == tiny_design.grid.num_bumps

    def test_conductance_spd_for_static_matrix(self, tiny_design):
        static = tiny_design.mna.static_conductance()
        # Symmetric
        assert abs(static - static.T).max() < 1e-9
        # Positive definite: all eigenvalues of a small design are positive.
        eigenvalues = np.linalg.eigvalsh(static.toarray())
        assert eigenvalues.min() > 0

    def test_capacitance_nonnegative(self, tiny_design):
        assert np.all(tiny_design.mna.cap_diag >= 0)

    def test_load_vector_scatter(self, tiny_design):
        mna = tiny_design.mna
        currents = np.ones(mna.num_loads)
        rhs = mna.load_vector(currents)
        assert rhs.sum() == pytest.approx(mna.num_loads)
        assert rhs.shape == (mna.num_nodes,)

    def test_load_vector_rejects_wrong_length(self, tiny_design):
        with pytest.raises(ValueError):
            tiny_design.mna.load_vector(np.ones(3))

    def test_inductor_branch_conductance_validation(self, tiny_design):
        with pytest.raises(ValueError):
            tiny_design.mna.conductance_with_inductor_branches(np.ones(2))

    def test_without_package_bumps_grounded(self, tiny_design):
        mna = build_mna(tiny_design.grid, package=None)
        assert mna.num_nodes == mna.num_die_nodes
        assert mna.num_inductors == 0
        # Static matrix should still be non-singular.
        static = mna.static_conductance()
        solution = sp.linalg.spsolve(static, mna.load_vector(np.ones(mna.num_loads)))
        assert np.all(np.isfinite(solution))

    def test_bulk_decap_without_esr_adds_no_extra_nodes(self, tiny_design):
        package = PackageModel(
            bump_resistance=25e-3, bump_inductance=30e-12, bulk_decap=1e-10, bulk_decap_esr=0.0
        )
        mna = build_mna(tiny_design.grid, package)
        expected = tiny_design.grid.num_nodes + tiny_design.grid.num_bumps
        assert mna.num_nodes == expected

    def test_bulk_decap_with_esr_adds_esr_nodes(self, tiny_design):
        package = PackageModel(
            bump_resistance=25e-3, bump_inductance=30e-12, bulk_decap=1e-10, bulk_decap_esr=5e-3
        )
        mna = build_mna(tiny_design.grid, package)
        expected = tiny_design.grid.num_nodes + 2 * tiny_design.grid.num_bumps
        assert mna.num_nodes == expected
