"""Tests for repro.eval.baselines — the golden-baseline drift gate."""

import json

import pytest

from repro.eval import BaselineStore, metrics_content_hash

METRICS = {
    "D3": {"mean_ae_mv": 10.0, "max_ae_mv": 35.0, "auc": 0.9},
    "D4": {"mean_ae_mv": 14.0, "max_ae_mv": 55.0, "auc": 0.8},
}
CONFIG_HASH = "a" * 64


@pytest.fixture()
def store(tmp_path):
    return BaselineStore(tmp_path / "baselines")


class TestBaselineStore:
    def test_save_load_round_trip(self, store):
        path = store.save("smoke", METRICS, CONFIG_HASH, git_rev="deadbeef")
        assert path.exists()
        baseline = store.load("smoke")
        assert baseline.metrics == METRICS
        assert baseline.config_hash == CONFIG_HASH
        assert baseline.git_rev == "deadbeef"
        assert store.exists("smoke")

    def test_missing_baseline_raises(self, store):
        assert not store.exists("smoke")
        with pytest.raises(FileNotFoundError, match="update-baseline"):
            store.load("smoke")

    def test_invalid_names_rejected(self, store):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ValueError):
                store.path(bad)

    def test_tampered_file_fails_integrity_check(self, store):
        path = store.save("smoke", METRICS, CONFIG_HASH)
        payload = json.loads(path.read_text())
        payload["metrics"]["D3"]["mean_ae_mv"] = 1.0  # hand-edited "baseline"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="integrity"):
            store.load("smoke")

    def test_content_hash_is_canonical(self):
        shuffled = {"D4": dict(METRICS["D4"]), "D3": dict(METRICS["D3"])}
        assert metrics_content_hash(METRICS) == metrics_content_hash(shuffled)
        perturbed = {**METRICS, "D3": {**METRICS["D3"], "auc": 0.91}}
        assert metrics_content_hash(METRICS) != metrics_content_hash(perturbed)


class TestDriftGate:
    def test_identical_metrics_pass(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        report = store.compare("smoke", METRICS, CONFIG_HASH)
        assert report.passed
        assert report.compared == 6
        assert "within tolerance" in report.summary()

    def test_within_tolerance_passes(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        nudged = {
            label: {metric: value * 1.01 for metric, value in values.items()}
            for label, values in METRICS.items()
        }
        # auc drifts by 1% absolute < 0.02 atol; errors by 1% < 10% rtol.
        assert store.compare("smoke", nudged, CONFIG_HASH).passed

    def test_drift_beyond_tolerance_fails(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        degraded = {**METRICS, "D4": {**METRICS["D4"], "mean_ae_mv": 28.0}}
        report = store.compare("smoke", degraded, CONFIG_HASH)
        assert not report.passed
        assert len(report.drifts) == 1
        drift = report.drifts[0]
        assert (drift.heldout, drift.metric) == ("D4", "mean_ae_mv")
        assert "DRIFT" in report.summary()

    def test_missing_design_fails(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        partial = {"D3": METRICS["D3"]}
        report = store.compare("smoke", partial, CONFIG_HASH)
        assert not report.passed
        assert report.missing == ["D4"]

    def test_nan_observation_fails(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        broken = {**METRICS, "D3": {**METRICS["D3"], "auc": float("nan")}}
        assert not store.compare("smoke", broken, CONFIG_HASH).passed

    def test_extra_metrics_and_designs_are_not_drift(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        grown = {
            label: {**values, "brand_new_metric": 1.0}
            for label, values in METRICS.items()
        }
        grown["D5"] = {"mean_ae_mv": 1.0}
        assert store.compare("smoke", grown, CONFIG_HASH).passed

    def test_config_hash_mismatch_raises(self, store):
        store.save("smoke", METRICS, CONFIG_HASH)
        with pytest.raises(ValueError, match="different campaign"):
            store.compare("smoke", METRICS, "b" * 64)

    def test_custom_tolerances_respected(self, store):
        store.save(
            "strict", METRICS, CONFIG_HASH,
            tolerances={"mean_ae_mv": {"rtol": 0.0, "atol": 0.0}},
        )
        exact = store.compare("strict", METRICS, CONFIG_HASH)
        assert exact.passed
        nudged = {**METRICS, "D3": {**METRICS["D3"], "mean_ae_mv": 10.0 + 1e-9}}
        assert not store.compare("strict", nudged, CONFIG_HASH).passed


class TestCampaignBaselineIntegration:
    def test_round_trip_against_real_report(self, tiny_campaign, tmp_path):
        config, _, _, report = tiny_campaign
        store = BaselineStore(tmp_path / "baselines")
        store.save(config.name, report.gated_metrics(), config.config_hash())
        drift = store.compare(
            config.name, report.gated_metrics(), config.config_hash()
        )
        assert drift.passed
