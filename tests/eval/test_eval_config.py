"""Tests for repro.eval.config — budgets, validation, hashing."""

import dataclasses

import pytest

from repro.core.config import TrainingConfig
from repro.eval import EvalConfig, budget, budget_names


def two_design_config(**overrides) -> EvalConfig:
    fields = dict(
        name="test",
        designs=(("A", "small@6"), ("B", "D1@0.1")),
        heldout=("B",),
        num_vectors=4,
        num_steps=30,
    )
    fields.update(overrides)
    return EvalConfig(**fields)


class TestEvalConfig:
    def test_labels_and_references(self):
        config = two_design_config()
        assert config.labels == ("A", "B")
        assert config.design_reference("A") == "small@6"
        with pytest.raises(KeyError):
            config.design_reference("missing")

    def test_training_labels_exclude_heldout(self):
        config = two_design_config(designs=(("A", "a"), ("B", "b"), ("C", "c")))
        assert config.training_labels("B") == ("A", "C")
        with pytest.raises(KeyError):
            config.training_labels("missing")

    def test_validation_rejects_bad_pools(self):
        with pytest.raises(ValueError, match="at least 2"):
            two_design_config(designs=(("A", "small@6"),), heldout=("A",))
        with pytest.raises(ValueError, match="unique"):
            two_design_config(designs=(("A", "x"), ("A", "y")))
        with pytest.raises(ValueError, match="not in the design pool"):
            two_design_config(heldout=("Z",))
        with pytest.raises(ValueError, match="held out"):
            two_design_config(heldout=())

    def test_corpus_spec_mirrors_config(self):
        config = two_design_config(num_vectors=6, shard_size=3, sim_batch_size=4)
        spec = config.corpus_spec()
        assert [d.label for d in spec.designs] == ["A", "B"]
        assert all(d.num_vectors == 6 and d.shard_size == 3 for d in spec.designs)
        assert spec.sim_batch_size == 4

    def test_hash_is_stable_and_sensitive(self):
        config = two_design_config()
        assert config.config_hash() == two_design_config().config_hash()
        changed = two_design_config(num_vectors=5)
        assert changed.config_hash() != config.config_hash()
        retrained = two_design_config(training=TrainingConfig(epochs=99))
        assert retrained.config_hash() != config.config_hash()

    def test_round_trip_through_dict(self):
        config = two_design_config(scenarios=("steady_state",), scenario_steps=(30,))
        rebuilt = EvalConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.config_hash() == config.config_hash()

    def test_scenario_specs_round_trip_through_dict(self):
        import json

        from repro.workloads import overlay, scenario_spec

        config = two_design_config(
            scenarios=(
                "steady_state",
                scenario_spec("power_virus", swing=2.0),
                overlay("duty_cycle_sweep", "didt_step_train"),
            ),
            scenario_steps=(30,),
        )
        rebuilt = EvalConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.config_hash() == config.config_hash()
        # Named scenarios serialise as plain strings, so name-only configs
        # keep the hashes their golden baselines pinned.
        assert config.to_dict()["scenarios"][0] == "steady_state"

    def test_scenario_entries_validated(self):
        with pytest.raises(ValueError, match="scenarios entries"):
            two_design_config(scenarios=(42,))
        # A misspelled family fails at config construction, not inside a
        # sweep worker minutes into the campaign.
        with pytest.raises(ValueError, match="unknown scenario"):
            two_design_config(scenarios=("power_virous",))


class TestBudgets:
    def test_registered_budgets(self):
        assert set(budget_names()) == {"tiny", "smoke", "paper"}
        with pytest.raises(KeyError):
            budget("nope")

    def test_smoke_budget_holds_out_two_designs(self):
        # The tier-2 acceptance bar: a leave-one-design-out evaluation on at
        # least two held-out designs.
        config = budget("smoke")
        assert len(config.heldout) >= 2
        assert len(config.designs) == 4

    def test_budgets_are_valid_and_hashable(self):
        hashes = {name: budget(name).config_hash() for name in budget_names()}
        assert len(set(hashes.values())) == len(hashes)

    def test_budgets_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            budget("tiny").num_vectors = 99
