"""Shared fixtures for the evaluation-harness tests.

One ``tiny``-budget campaign is run per session and shared read-only by the
protocol, sweep and baseline tests — the campaign (corpus generation, pooled
training, serving-path screening) is the expensive part, the assertions are
cheap.
"""

from __future__ import annotations

import pytest

from repro.eval import CrossDesignEvaluator, budget


@pytest.fixture(scope="session")
def tiny_eval_config():
    """The registered ``tiny`` evaluation budget."""
    return budget("tiny")


@pytest.fixture(scope="session")
def tiny_campaign(tiny_eval_config, tmp_path_factory):
    """A completed tiny campaign: ``(config, workdir, evaluator, report)``."""
    workdir = tmp_path_factory.mktemp("tiny-campaign")
    evaluator = CrossDesignEvaluator(tiny_eval_config, workdir)
    report = evaluator.run(num_workers=0)
    return tiny_eval_config, workdir, evaluator, report
