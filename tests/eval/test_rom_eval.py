"""ROM-mode evaluation plumbing: config carriage and label_solver stamping."""

import pytest

from repro.eval import CrossDesignEvaluator, CrossDesignReport, EvalConfig
from repro.sim.rom import ROMOptions


def two_design_config(**overrides) -> EvalConfig:
    fields = dict(
        name="test",
        designs=(("A", "small@6"), ("B", "D1@0.1")),
        heldout=("B",),
        num_vectors=4,
        num_steps=30,
    )
    fields.update(overrides)
    return EvalConfig(**fields)


class TestEvalConfigSolverMode:
    def test_full_mode_omits_solver_keys(self):
        payload = two_design_config().to_dict()
        assert "solver_mode" not in payload
        assert "rom" not in payload

    def test_rom_mode_round_trips_with_options(self):
        config = two_design_config(solver_mode="rom", rom=ROMOptions(rank=48))
        rebuilt = EvalConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.config_hash() == config.config_hash()

    def test_rom_mode_autofills_default_options(self):
        config = two_design_config(solver_mode="rom")
        assert config.rom == ROMOptions()

    def test_hash_sensitive_to_solver_mode(self):
        full = two_design_config()
        rom = two_design_config(solver_mode="rom")
        assert full.config_hash() != rom.config_hash()
        assert rom.config_hash() != two_design_config(
            solver_mode="rom", rom=ROMOptions(rank=48)
        ).config_hash()

    def test_rejects_unknown_solver_mode(self):
        with pytest.raises(ValueError, match="solver mode"):
            two_design_config(solver_mode="reduced")

    def test_corpus_spec_carries_mode(self):
        rom = ROMOptions(rank=48)
        spec = two_design_config(solver_mode="rom", rom=rom).corpus_spec()
        assert spec.solver_mode == "rom"
        assert spec.rom == rom
        assert two_design_config().corpus_spec().solver_mode == "full"


class TestReportLabelSolver:
    def test_round_trips_through_save_load(self, tmp_path):
        report = CrossDesignReport(config_hash="abc", label_solver="rom")
        path = tmp_path / "report.json"
        report.save(path)
        assert CrossDesignReport.load(path).label_solver == "rom"

    def test_pre_seam_artefacts_default_to_full(self, tmp_path):
        import json

        report = CrossDesignReport(config_hash="abc")
        path = tmp_path / "report.json"
        report.save(path)
        payload = json.loads(path.read_text())
        del payload["label_solver"]
        path.write_text(json.dumps(payload))
        assert CrossDesignReport.load(path).label_solver == "full"

    def test_evaluator_rejects_solver_mismatch(self, tmp_path):
        config = two_design_config(solver_mode="rom")
        evaluator = CrossDesignEvaluator(config, tmp_path)
        # A full-order-labelled artefact for the same campaign hash must be
        # refused, not silently mixed with ROM-labelled rows.
        stale = CrossDesignReport(config_hash=config.config_hash())
        stale.save(evaluator.report_path)
        with pytest.raises(ValueError, match="labelled by the 'full' solver"):
            evaluator.load_report()

    def test_evaluator_accepts_matching_solver(self, tmp_path):
        config = two_design_config(solver_mode="rom")
        evaluator = CrossDesignEvaluator(config, tmp_path)
        report = CrossDesignReport(
            config_hash=config.config_hash(), label_solver="rom"
        )
        report.save(evaluator.report_path)
        assert evaluator.load_report().label_solver == "rom"
