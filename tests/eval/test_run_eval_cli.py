"""End-to-end tests of the ``scripts/run_eval.py`` CLI (tiny budget).

Drives the real entry point in a subprocess — the exact invocation CI uses,
just at the ``tiny`` budget — and asserts the three behaviours the tier-2
gate depends on: a missing baseline is an error under ``--check``,
``--update-baseline`` pins the current numbers, and a perturbed baseline
fails the build with a drift diagnosis.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "run_eval.py"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--budget", "tiny", "--num-workers", "0", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )


@pytest.fixture(scope="module")
def cli_dirs(tmp_path_factory):
    """A private workdir + baseline dir for the CLI run."""
    root = tmp_path_factory.mktemp("run-eval-cli")
    return root / "workdir", root / "baselines"


@pytest.mark.slow
class TestRunEvalCli:
    def test_full_gate_lifecycle(self, cli_dirs):
        workdir, baselines = cli_dirs
        base_args = ("--workdir", str(workdir), "--baselines", str(baselines))

        # 1. --check with no baseline: hard error (CI must not silently pass).
        missing = run_cli(*base_args, "--check")
        assert missing.returncode == 1
        assert "no baseline" in missing.stdout

        # 2. Without --check a missing baseline is only a warning.
        warned = run_cli(*base_args)
        assert warned.returncode == 0
        assert "WARNING" in warned.stdout

        # 3. Pin the baseline; the campaign resumes from its artefacts.
        pinned = run_cli(*base_args, "--update-baseline")
        assert pinned.returncode == 0
        baseline_path = baselines / "tiny.json"
        assert baseline_path.exists()
        assert "cross-design evaluation" in pinned.stdout  # the report table
        assert "scenario sweep" in pinned.stdout

        # 4. Gate passes against the freshly pinned numbers.
        gated = run_cli(*base_args, "--check")
        assert gated.returncode == 0, gated.stdout + gated.stderr
        assert "within tolerance" in gated.stdout

        # 5. Degrade the stored baseline (keeping its integrity hash valid):
        #    the gate must fail and name the drifted metric.
        payload = json.loads(baseline_path.read_text())
        label = next(iter(payload["metrics"]))
        payload["metrics"][label]["mean_ae_mv"] /= 3.0
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.eval import metrics_content_hash

        payload["content_hash"] = metrics_content_hash(payload["metrics"])
        baseline_path.write_text(json.dumps(payload))
        drifted = run_cli(*base_args, "--check")
        assert drifted.returncode == 1
        assert "DRIFT" in drifted.stdout
        assert "mean_ae_mv" in drifted.stdout
