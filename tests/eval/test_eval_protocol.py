"""Tests for repro.eval.protocol — the leave-one-design-out campaign."""

import dataclasses
import json

import numpy as np
import pytest

from repro.eval import CrossDesignEvaluator, CrossDesignReport, HeldoutEvaluation
from repro.eval.protocol import REPORT_NAME


class TestCampaignRun:
    def test_report_covers_every_heldout_design(self, tiny_campaign):
        config, _, _, report = tiny_campaign
        assert set(report.rows) == set(config.heldout)
        assert report.config_hash == config.config_hash()

    def test_heldout_row_is_sane(self, tiny_campaign):
        config, _, _, report = tiny_campaign
        row = report.rows[config.heldout[0]]
        assert row.trained_on == config.training_labels(row.heldout)
        assert row.heldout not in row.trained_on
        assert row.num_vectors == config.num_vectors
        assert np.isfinite(row.accuracy.mean_ae)
        assert 0.0 <= row.hotspot_precision <= 1.0
        assert 0.0 <= row.hotspot_recall <= 1.0
        assert row.training_epochs > 0
        assert row.serving_seconds > 0
        assert row.latency["vectors_per_sec"] > 0
        # Every held-out vector went through the service's model path.
        assert row.service["model_batches"] >= 1

    def test_artifact_written_and_resumable(self, tiny_campaign):
        config, workdir, evaluator, report = tiny_campaign
        artifact = workdir / REPORT_NAME
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["config_hash"] == config.config_hash()
        # A resumed run re-evaluates nothing and returns identical rows.
        resumed = evaluator.run(num_workers=0)
        assert resumed.rows.keys() == report.rows.keys()
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            report.to_dict(), sort_keys=True
        )

    def test_heldout_checkpoint_registered_for_serving(self, tiny_campaign):
        config, workdir, evaluator, _ = tiny_campaign
        for heldout in config.heldout:
            assert (workdir / "checkpoints" / f"{heldout}.npz").exists()
            assert heldout in evaluator.registry.available()

    def test_mismatched_config_rejects_artifact(self, tiny_campaign):
        config, workdir, _, _ = tiny_campaign
        changed = dataclasses.replace(config, num_vectors=config.num_vectors + 1)
        stranger = CrossDesignEvaluator(changed, workdir)
        with pytest.raises(ValueError, match="different campaign"):
            stranger.load_report()

    def test_gated_metrics_shape(self, tiny_campaign):
        config, _, _, report = tiny_campaign
        metrics = report.gated_metrics()
        assert set(metrics) == set(config.heldout)
        for values in metrics.values():
            assert {"mean_ae_mv", "max_ae_mv", "hotspot_precision", "auc"} <= set(values)
            assert all(isinstance(v, float) for v in values.values())

    def test_table_and_records(self, tiny_campaign):
        _, _, _, report = tiny_campaign
        table = report.table()
        for label in report.rows:
            assert label in table
        records = report.records()
        assert [r.label for r in records] == list(report.rows)
        assert all(r.experiment == "cross_design" for r in records)


class TestReportSerialization:
    def test_round_trip(self, tiny_campaign, tmp_path):
        _, _, _, report = tiny_campaign
        path = tmp_path / "copy.json"
        report.save(path)
        loaded = CrossDesignReport.load(path)
        assert loaded.config_hash == report.config_hash
        assert loaded.rows.keys() == report.rows.keys()
        for label, row in report.rows.items():
            restored = loaded.rows[label]
            assert isinstance(restored, HeldoutEvaluation)
            assert restored.accuracy == row.accuracy
            assert restored.trained_on == row.trained_on
            assert restored.latency == row.latency

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "config_hash": "x", "rows": {}}))
        with pytest.raises(ValueError, match="version"):
            CrossDesignReport.load(path)

    def test_speedup_property(self):
        row_kwargs = dict(
            heldout="X",
            trained_on=("A",),
            num_train_samples=1,
            num_vectors=1,
            accuracy=None,
            hotspot_precision=1.0,
            hotspot_recall=1.0,
        )
        fast = HeldoutEvaluation(
            **row_kwargs, serving_seconds=0.5, simulator_seconds=2.0
        )
        assert fast.speedup == pytest.approx(4.0)
        degenerate = HeldoutEvaluation(
            **row_kwargs, serving_seconds=0.0, simulator_seconds=2.0
        )
        assert degenerate.speedup == float("inf")
