"""Tests for repro.eval.sweep — the resumable scenario sweep."""

import dataclasses
import json
import shutil

import pytest

from repro.eval import ScenarioSweep
from repro.eval.sweep import SWEEP_NAME, SweepJob
from repro.workloads import scenario_spec


@pytest.fixture(scope="module")
def completed_sweep(tiny_campaign):
    """A finished (inline) sweep over the tiny campaign's checkpoints."""
    config, workdir, _, _ = tiny_campaign
    sweep = ScenarioSweep(config, workdir)
    records = sweep.run(num_workers=0)
    return config, workdir, sweep, records


class TestScenarioSweep:
    def test_job_grid(self, tiny_campaign):
        config, workdir, _, _ = tiny_campaign
        jobs = ScenarioSweep(config, workdir).jobs()
        expected = (
            len(config.heldout)
            * len(config.scenarios)
            * len(config.scenario_steps)
            * len(config.scenario_seeds)
        )
        assert len(jobs) == expected
        assert len({job.key for job in jobs}) == len(jobs)

    def test_rows_cover_grid_with_sane_fields(self, completed_sweep):
        config, _, sweep, records = completed_sweep
        assert len(records) == len(sweep.jobs())
        for record in records:
            values = record.values
            assert values["heldout"] in config.heldout
            assert values["scenario"] in config.scenarios
            assert values["true_worst_noise_v"] > 0
            assert values["map_mae_mv"] >= 0
            assert 0.0 <= values["hotspot_precision"] <= 1.0
            assert 0.0 <= values["hotspot_recall"] <= 1.0
            assert values["sim_runtime_s"] > 0
            assert values["predict_runtime_s"] > 0

    def test_manifest_written_with_config_hash(self, completed_sweep):
        config, workdir, _, _ = completed_sweep
        payload = json.loads((workdir / SWEEP_NAME).read_text())
        assert payload["config_hash"] == config.config_hash()
        assert len(payload["rows"]) > 0

    def test_resume_skips_completed_rows(self, completed_sweep):
        config, workdir, sweep, records = completed_sweep
        # Poison one stored row; a resumed run must keep it verbatim instead
        # of recomputing (the manifest, not the work, is the source of truth).
        rows = sweep.load_rows()
        key = next(iter(rows))
        rows[key] = dict(rows[key], map_mae_mv=-123.0)
        sweep._save_rows(rows)
        resumed = sweep.run(num_workers=0)
        poisoned = [r for r in resumed if r.label == key]
        assert poisoned and poisoned[0].values["map_mae_mv"] == -123.0
        # Repair for any later user of the fixture.
        sweep._save_rows({r.label: r.values for r in records})

    def test_mismatched_config_rejects_manifest(self, completed_sweep):
        config, workdir, _, _ = completed_sweep
        changed = dataclasses.replace(config, num_vectors=config.num_vectors + 1)
        with pytest.raises(ValueError, match="different campaign"):
            ScenarioSweep(changed, workdir).load_rows()

    def test_spec_variants_fan_out_and_run_end_to_end(self, tiny_campaign, tmp_path):
        # Parameter variants of one family are distinct sweep jobs with
        # distinct keys, and they run through the same checkpoints as named
        # scenarios (fresh workdir so the manifest hash matches the config).
        config, workdir, _, _ = tiny_campaign
        variant_config = dataclasses.replace(
            config,
            scenarios=(
                "steady_state",
                scenario_spec("steady_state", level=0.9),
                scenario_spec("power_virus", period_scale=2.0),
            ),
        )
        variant_workdir = tmp_path / "variants"
        variant_workdir.mkdir()
        shutil.copytree(workdir / "checkpoints", variant_workdir / "checkpoints")
        sweep = ScenarioSweep(variant_config, variant_workdir)
        jobs = sweep.jobs()
        assert len({job.key for job in jobs}) == len(jobs)
        records = sweep.run(num_workers=0)
        assert len(records) == len(jobs)
        labels = {record.values["scenario"] for record in records}
        assert "steady_state" in labels
        assert any(label.startswith("steady_state[") for label in labels)
        assert any(label.startswith("power_virus[") for label in labels)
        # The hotter steady-state variant predicts more noise than default.
        by_label = {r.values["scenario"]: r.values for r in records}
        default = by_label["steady_state"]
        hot = next(v for k, v in by_label.items() if k.startswith("steady_state["))
        assert hot["predicted_worst_noise_v"] > default["predicted_worst_noise_v"]

    def test_job_keys_stable_for_named_scenarios(self):
        job = SweepJob(heldout="D3", scenario="power_virus", num_steps=60, seed=1)
        assert job.key == "D3:power_virus:60:s1"
        spec_job = SweepJob(
            heldout="D3", scenario=scenario_spec("power_virus", swing=2.0),
            num_steps=60, seed=1,
        )
        assert spec_job.key.startswith("D3:power_virus[")

    def test_sweep_is_deterministic_for_fixed_jobs(self, completed_sweep, tmp_path):
        # Re-running the same jobs against the same checkpoints from a fresh
        # manifest reproduces the accuracy fields exactly (runtimes differ).
        config, workdir, _, records = completed_sweep
        fresh = ScenarioSweep(config, workdir)
        fresh_rows = fresh.run(num_workers=0, resume=False)
        by_key = {r.label: r.values for r in fresh_rows}
        for record in records:
            again = by_key[record.label]
            for field in ("true_worst_noise_v", "predicted_worst_noise_v", "map_mae_mv"):
                assert again[field] == record.values[field]
