"""Tests for repro.eval.training — the pooled cross-design trainer."""

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.datagen import load_corpus
from repro.eval import MultiDesignTrainer, fit_pooled_normalizer
from repro.workloads.dataset import expansion_split

TINY_MODEL = ModelConfig(distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0)


@pytest.fixture(scope="module")
def pool(tiny_campaign):
    """The tiny campaign's per-design corpora (D1/D2/D3 at small scale)."""
    _, workdir, _, _ = tiny_campaign
    return load_corpus(workdir / "corpus")


def make_trainer(pool, labels, epochs=2, seed=0):
    return MultiDesignTrainer(
        {label: pool[label] for label in labels},
        model_config=TINY_MODEL,
        training_config=TrainingConfig(
            epochs=epochs, batch_size=4, early_stopping_patience=None, seed=seed
        ),
    )


class TestPooledNormalizer:
    def test_scales_are_pooled_and_positive(self, pool):
        splits = {
            label: expansion_split(dataset, seed=0) for label, dataset in pool.items()
        }
        normalizer = fit_pooled_normalizer(pool, splits)
        assert normalizer.current_scale > 0
        assert normalizer.noise_scale > 0
        # The distance scale covers the largest die of the pool.
        assert normalizer.distance_scale == pytest.approx(
            max(float(np.max(ds.distance)) for ds in pool.values())
        )

    def test_uses_training_partitions_only(self, pool):
        label, dataset = next(iter(pool.items()))
        full = expansion_split(dataset, seed=0)
        # A normaliser fitted on a single training sample differs from one
        # fitted on the whole partition — proof the split is respected.
        one_sample = type(full)(
            train=full.train[:1], validation=full.validation, test=full.test
        )
        wide = fit_pooled_normalizer({label: dataset}, {label: full})
        narrow = fit_pooled_normalizer({label: dataset}, {label: one_sample})
        assert wide.current_scale != narrow.current_scale


class TestMultiDesignTrainer:
    def test_trains_across_designs_with_different_tile_shapes(self, pool):
        shapes = {ds.tile_shape for ds in pool.values()}
        assert len(shapes) > 1  # the premise of the cross-design setting
        result = make_trainer(pool, list(pool)).train()
        assert result.history.num_epochs == 2
        assert np.isfinite(result.history.train_loss).all()
        assert result.num_train_samples == sum(
            len(split.train) for split in result.splits.values()
        )

    def test_loss_decreases_with_more_epochs(self, pool):
        result = make_trainer(pool, list(pool), epochs=6).train()
        assert result.history.train_loss[-1] < result.history.train_loss[0]

    def test_fresh_runs_are_bit_identical(self, pool):
        first = make_trainer(pool, list(pool)).train()
        second = make_trainer(pool, list(pool)).train()
        assert first.history.train_loss == second.history.train_loss
        assert first.history.validation_loss == second.history.validation_loss
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(value, second.model.state_dict()[name])

    def test_seed_changes_the_schedule(self, pool):
        first = make_trainer(pool, list(pool)).train()
        other = make_trainer(pool, list(pool), seed=9).train()
        assert first.history.train_loss != other.history.train_loss

    def test_rejects_mixed_bump_counts(self, pool):
        from repro.pdn import small_test_design
        from repro.workloads import build_dataset, generate_test_vectors
        from repro.workloads.vectors import VectorConfig

        # The unit-test design has 9 bumps; the reference analogues have 4.
        design = small_test_design(tile_rows=6, tile_cols=6, num_loads=24, seed=0)
        traces = generate_test_vectors(
            design, 3, VectorConfig(num_steps=20, dt=1e-11), seed=0
        )
        other = build_dataset(design, traces, compression_rate=0.4)
        datasets = dict(pool)
        datasets["odd"] = other
        with pytest.raises(ValueError, match="bump count"):
            MultiDesignTrainer(datasets, model_config=TINY_MODEL)

    def test_rejects_empty_and_tiny_pools(self, pool):
        with pytest.raises(ValueError, match="at least one design"):
            MultiDesignTrainer({}, model_config=TINY_MODEL)
        label, dataset = next(iter(pool.items()))
        with pytest.raises(ValueError, match="at least 3"):
            MultiDesignTrainer({label: dataset.subset([0, 1])}, model_config=TINY_MODEL)
