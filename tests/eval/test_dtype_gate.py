"""Precision-aware evaluation gating.

float32 serving is gated against the *same* golden float64 baseline numbers,
via per-dtype tolerance bands stored next to the default ones.  These tests
pin the storage round trip, the band selection in ``compare``, the
preserve-on-refresh behaviour, and the report artefact's serving-dtype stamp
(mixed-precision resume is rejected).
"""

from __future__ import annotations

import pytest

from repro.eval import BaselineStore, CrossDesignEvaluator, budget
from repro.eval.protocol import CrossDesignReport

METRICS = {"D1": {"mean_ae_mv": 10.0, "auc": 0.9}}
FLOAT32_BANDS = {"float32": {"mean_ae_mv": {"rtol": 0.5, "atol": 0.0}}}


def test_dtype_tolerances_round_trip(tmp_path):
    store = BaselineStore(tmp_path)
    store.save("unit", METRICS, "hash", dtype_tolerances=FLOAT32_BANDS)
    baseline = store.load("unit")
    assert baseline.dtype_tolerances == FLOAT32_BANDS


def test_compare_uses_dtype_bands(tmp_path):
    store = BaselineStore(tmp_path)
    store.save("unit", METRICS, "hash", dtype_tolerances=FLOAT32_BANDS)
    # 14.0 vs 10.0 busts the default 10% band but sits inside the float32
    # band (50% relative).
    drifted = {"D1": {"mean_ae_mv": 14.0, "auc": 0.9}}
    assert not store.compare("unit", drifted, "hash").passed
    assert store.compare("unit", drifted, "hash", dtype="float32").passed
    # Metrics without a float32 override keep the default band.
    bad_auc = {"D1": {"mean_ae_mv": 10.0, "auc": 0.5}}
    assert not store.compare("unit", bad_auc, "hash", dtype="float32").passed


def test_refresh_preserves_dtype_bands(tmp_path):
    # A float64 --update-baseline (which never passes dtype_tolerances) must
    # not drop the stored float32 gate bands.
    store = BaselineStore(tmp_path)
    store.save("unit", METRICS, "hash", dtype_tolerances=FLOAT32_BANDS)
    store.save("unit", {"D1": {"mean_ae_mv": 11.0, "auc": 0.9}}, "hash")
    baseline = store.load("unit")
    assert baseline.dtype_tolerances == FLOAT32_BANDS
    assert baseline.metrics["D1"]["mean_ae_mv"] == 11.0


def test_unknown_dtype_falls_back_to_default_bands(tmp_path):
    store = BaselineStore(tmp_path)
    store.save("unit", METRICS, "hash", dtype_tolerances=FLOAT32_BANDS)
    drifted = {"D1": {"mean_ae_mv": 14.0, "auc": 0.9}}
    assert not store.compare("unit", drifted, "hash", dtype="float16").passed


def test_report_stamps_serving_dtype(tmp_path):
    report = CrossDesignReport(config_hash="abc", serving_dtype="float32")
    path = tmp_path / "report.json"
    report.save(path)
    assert CrossDesignReport.load(path).serving_dtype == "float32"
    # Reports written before the stamp existed default to float64.
    loaded = CrossDesignReport(config_hash="abc")
    assert loaded.serving_dtype == "float64"


def test_mixed_precision_resume_rejected(tmp_path, tiny_eval_config):
    workdir = tmp_path / "campaign"
    evaluator = CrossDesignEvaluator(tiny_eval_config, workdir, serving_dtype="float32")
    CrossDesignReport(
        config_hash=tiny_eval_config.config_hash(), serving_dtype="float64"
    ).save(evaluator.report_path)
    with pytest.raises(ValueError, match="serving dtype"):
        evaluator.load_report()


def test_evaluator_rejects_unsupported_dtype(tmp_path, tiny_eval_config):
    with pytest.raises(TypeError):
        CrossDesignEvaluator(tiny_eval_config, tmp_path, serving_dtype="bfloat16")
