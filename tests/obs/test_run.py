"""Process-global context and end-to-end telemetry runs.

The acceptance path of the observability PR: a pool-run corpus generation
plus a screening-service pass, both inside one ``obs.start_run`` /
``obs.finish_run`` window, must merge every process's telemetry into one
config-hash-stamped ``run_report.json`` carrying the serving queue-depth,
batch-size and per-path latency metrics.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.datagen import CorpusDesignSpec, CorpusSpec, generate_corpus
from repro.serving import PredictorRegistry, ScreeningService


def small_spec() -> CorpusSpec:
    """A two-shard-per-worker corpus spec sized for fast pool tests."""
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small", design="small@6", num_vectors=4, num_steps=30,
                shard_size=1, seed=3,
            ),
        ),
        sim_batch_size=4,
    )


class TestGlobalContext:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.metrics() is obs.NULL_REGISTRY
        assert not obs.get_tracer().enabled
        assert obs.active_run() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        obs.configure(None)  # rebuild the context under the env setting
        assert obs.enabled()
        registry = obs.metrics()
        assert registry.enabled
        registry.counter("x").inc()
        assert registry.counter("x").value == 1

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        obs.configure(False)
        assert not obs.enabled()
        assert obs.metrics() is obs.NULL_REGISTRY

    def test_flush_without_active_run_is_noop(self):
        obs.configure(True)
        assert obs.flush_shard() is None

    def test_finish_without_run_raises(self):
        with pytest.raises(RuntimeError, match="no active run"):
            obs.finish_run()

    def test_worker_label_is_main_only_for_the_run_owner(self, tmp_path):
        assert obs.worker_label() == f"w{os.getpid()}"
        obs.start_run(tmp_path / "run")
        assert obs.worker_label() == "main"


class TestRunLifecycle:
    def test_start_run_exports_environment_for_pool_workers(self, tmp_path):
        run_dir = obs.start_run(tmp_path / "run", config={"seed": 1})
        assert os.environ["REPRO_OBS"] == "1"
        assert os.environ["REPRO_OBS_DIR"] == str(run_dir)
        assert obs.enabled()
        assert obs.active_run() == run_dir

    def test_finish_run_writes_stamped_report_and_resets(self, tmp_path):
        config = {"budget": "test", "seed": 3}
        obs.start_run(tmp_path / "run", config=config)
        obs.metrics().counter("serving.requests").inc(7)
        with obs.get_tracer().span("eval.training", heldout="D1"):
            pass
        path = obs.finish_run()
        report = obs.load_run_report(path)
        assert report["config_hash"] == obs.config_hash(config)
        assert report["metrics"]["serving.requests"]["value"] == 7
        assert report["spans"]["main"][0]["name"] == "eval.training"
        # The run is over: context disabled, environment toggles removed.
        assert not obs.enabled()
        assert "REPRO_OBS" not in os.environ
        assert obs.active_run() is None


class TestEndToEndPoolRun:
    def test_pool_and_inline_corpus_runs_report_identical_work_metrics(self, tmp_path):
        """Worker-owned counters merge to the same totals pool-vs-inline."""
        reports = {}
        for mode, num_workers in (("inline", 0), ("pooled", 2)):
            obs.start_run(tmp_path / mode / "obs", config={"mode": "corpus"})
            generate_corpus(small_spec(), tmp_path / mode / "corpus", num_workers=num_workers)
            reports[mode] = obs.load_run_report(obs.finish_run())
        for name in ("datagen.shards_generated", "datagen.vectors_generated"):
            assert (
                reports["inline"]["metrics"][name]["value"]
                == reports["pooled"]["metrics"][name]["value"]
            ), name
        assert reports["inline"]["metrics"]["datagen.shards_generated"]["value"] == 4
        # The pooled run merged shards from actual worker processes.
        assert reports["pooled"]["shards"][0] == "main"
        assert any(label.startswith("w") for label in reports["pooled"]["shards"])
        # Both runs recorded per-shard simulate spans and durations.
        histogram = reports["pooled"]["metrics"]["datagen.shard_seconds"]
        assert histogram["count"] == 4
        span_names = {
            record["name"]
            for records in reports["pooled"]["spans"].values()
            for record in records
        }
        assert {"datagen.generate_corpus", "datagen.shard", "datagen.simulate"} <= span_names

    def test_corpus_plus_screening_session_produces_merged_report(
        self, tmp_path, tiny_design, tiny_traces, tiny_predictor
    ):
        """The acceptance criterion: datagen pool + serving in one report."""
        obs.start_run(tmp_path / "obs", config={"campaign": "acceptance", "seed": 3})
        generate_corpus(small_spec(), tmp_path / "corpus", num_workers=2)

        checkpoint_dir = tmp_path / "checkpoints"
        predictors = PredictorRegistry(checkpoint_dir, capacity=2)
        predictors.register(tiny_design.name, tiny_predictor)
        with ScreeningService(predictors, max_batch=4, max_wait=1e-3) as service:
            service.screen(tiny_traces, tiny_design)

        report = obs.load_run_report(obs.finish_run())
        assert report["config_hash"] == obs.config_hash(
            {"campaign": "acceptance", "seed": 3}
        )
        metrics = report["metrics"]
        # Serving telemetry: every request counted, queue depth and batch
        # size sampled, latency histogrammed on the batched path.
        assert metrics["serving.requests"]["value"] == len(tiny_traces)
        assert metrics["serving.queue_depth"]["count"] == len(tiny_traces)
        assert metrics["serving.batch_size"]["count"] >= 1
        assert 1 <= metrics["serving.batch_size"]["max"] <= 4
        latency = metrics["serving.request_latency.batched"]
        assert latency["count"] == len(tiny_traces)
        assert latency["summary"]["p95"] >= latency["summary"]["p50"] > 0
        # Datagen telemetry from the pool merged into the same report.
        assert metrics["datagen.shards_generated"]["value"] == 4
        assert any(label.startswith("w") for label in report["shards"])
