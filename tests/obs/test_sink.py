"""Event-shard sink: round trips, deterministic merges, the report stamp.

The merge determinism test here carries the pool-vs-inline guarantee at the
byte level: the same logical telemetry, sharded the way a worker pool shards
it and written in any filesystem order, must render to a byte-identical
``run_report.json``.  (The end-to-end pool runs live in ``test_run.py``;
real wall-clock durations differ between runs, so the byte-level contract is
pinned here with controlled event values, exactly like the manifest-content
comparison in ``tests/datagen/test_determinism.py``.)
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    RUN_REPORT_NAME,
    SpanTracer,
    build_run_report,
    config_hash,
    load_run_report,
    merge_shards,
    read_event_shard,
    write_event_shard,
    write_run_report,
)
from repro.obs.sink import REPORT_VERSION, shard_path


def worker_registry(generated: int, latencies) -> MetricsRegistry:
    """A registry shaped like one datagen worker's telemetry."""
    registry = MetricsRegistry()
    registry.counter("datagen.shards_generated").inc(generated)
    registry.gauge("datagen.queue_depth").set(float(generated))
    for value in latencies:
        registry.histogram("datagen.shard_seconds").observe(value)
    return registry


class TestShardRoundTrip:
    def test_write_then_read(self, tmp_path):
        registry = worker_registry(2, [0.5, 0.25])
        tracer = SpanTracer()
        with tracer.span("datagen.shard", label="small"):
            pass
        path = write_event_shard(tmp_path, "w1", registry, tracer)
        assert path == shard_path(tmp_path, "w1")
        shard = read_event_shard(path)
        assert shard["label"] == "w1"
        assert shard["metrics"]["datagen.shards_generated"]["value"] == 2
        [span] = shard["spans"]
        assert span["name"] == "datagen.shard"

    def test_reflush_overwrites_instead_of_appending(self, tmp_path):
        registry = worker_registry(1, [0.5])
        write_event_shard(tmp_path, "w1", registry)
        registry.counter("datagen.shards_generated").inc()
        write_event_shard(tmp_path, "w1", registry)  # cumulative re-flush
        merged = merge_shards(tmp_path)
        assert merged["metrics"].counter("datagen.shards_generated").value == 2

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "events-broken.jsonl"
        path.write_text(json.dumps({"kind": "metric", "name": "x", "type": "counter", "value": 1}) + "\n")
        with pytest.raises(ValueError, match="missing shard header"):
            read_event_shard(path)

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "events-broken.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown event kind"):
            read_event_shard(path)


class TestMerge:
    def test_counters_and_histograms_add_across_shards(self, tmp_path):
        write_event_shard(tmp_path, "w1", worker_registry(2, [0.5, 0.25]))
        write_event_shard(tmp_path, "w2", worker_registry(3, [1.0]))
        merged = merge_shards(tmp_path)
        registry = merged["metrics"]
        assert registry.counter("datagen.shards_generated").value == 5
        histogram = registry.histogram("datagen.shard_seconds")
        assert histogram.count == 3
        assert histogram.max == 1.0
        assert merged["shards"] == ["w1", "w2"]

    def test_spans_stay_grouped_per_shard_label(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("datagen.shard"):
            pass
        write_event_shard(tmp_path, "main", MetricsRegistry(), tracer)
        write_event_shard(tmp_path, "w1", worker_registry(1, []), tracer)
        merged = merge_shards(tmp_path)
        assert set(merged["spans"]) == {"main", "w1"}

    def test_pool_sharded_writes_merge_byte_identical_in_any_order(self, tmp_path):
        """The byte-level pool-vs-inline contract (controlled event values)."""
        shards = {
            "main": worker_registry(0, []),
            "w1001": worker_registry(2, [0.5, 0.25]),
            "w1002": worker_registry(3, [1.0, 0.125, 2.0]),
        }
        config = {"budget": "smoke", "seed": 3}
        first_dir, second_dir = tmp_path / "a", tmp_path / "b"
        for label in ("main", "w1001", "w1002"):  # creation order A
            write_event_shard(first_dir, label, shards[label])
        for label in ("w1002", "main", "w1001"):  # creation order B
            write_event_shard(second_dir, label, shards[label])
        first = write_run_report(first_dir, config=config)
        second = write_run_report(second_dir, config=config)
        assert first.read_bytes() == second.read_bytes()


class TestRunReport:
    def test_report_is_config_hash_stamped(self, tmp_path):
        write_event_shard(tmp_path, "main", worker_registry(1, [0.5]))
        config = {"budget": "smoke"}
        report = build_run_report(tmp_path, config=config)
        assert report["version"] == REPORT_VERSION
        assert report["config_hash"] == config_hash(config)
        assert report["config"] == config
        assert report["shards"] == ["main"]

    def test_histograms_carry_a_summary_block(self, tmp_path):
        write_event_shard(tmp_path, "main", worker_registry(1, [0.5, 0.25]))
        report = build_run_report(tmp_path)
        summary = report["metrics"]["datagen.shard_seconds"]["summary"]
        assert summary["count"] == 2
        assert "p95" in summary

    def test_extra_keys_embed_but_collisions_raise(self, tmp_path):
        write_event_shard(tmp_path, "main", MetricsRegistry())
        report = build_run_report(tmp_path, extra={"campaign": "x"})
        assert report["campaign"] == "x"
        with pytest.raises(ValueError, match="collide"):
            build_run_report(tmp_path, extra={"metrics": {}})

    def test_load_accepts_file_or_directory(self, tmp_path):
        write_event_shard(tmp_path, "main", MetricsRegistry())
        path = write_run_report(tmp_path, config={"a": 1})
        assert path.name == RUN_REPORT_NAME
        assert load_run_report(path) == load_run_report(tmp_path)

    def test_load_rejects_newer_versions(self, tmp_path):
        path = tmp_path / RUN_REPORT_NAME
        path.write_text(json.dumps({"version": REPORT_VERSION + 1}))
        with pytest.raises(ValueError, match="version"):
            load_run_report(path)

    def test_config_hash_matches_canonical_json_convention(self):
        assert config_hash({"b": 1, "a": 2}) == config_hash({"a": 2, "b": 1})
        assert config_hash(None) == config_hash({})
        assert config_hash({"a": 1}) != config_hash({"a": 2})
