"""Fixtures for the observability suite.

The :mod:`repro.obs` package keeps process-global state (registry, tracer,
active run, the ``REPRO_OBS``/``REPRO_OBS_DIR`` environment toggles).  Every
test in this suite runs between two :func:`repro.obs.reset` calls so no test
can leak an enabled context — or an active run — into its neighbours.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def pristine_obs():
    """Reset the global observability context around every test."""
    obs.reset()
    yield
    obs.reset()
