"""Span tracer: nesting, durations, attributes, the retention cap.

Two properties matter to the instrumented call sites: ``span.duration_s``
stays valid after the ``with`` block (the ``Timer.last`` replacement
contract), and it stays valid *even on a disabled tracer* — only the
recording is gated, never the measurement.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import SpanTracer


class TestSpanLifecycle:
    def test_duration_survives_the_with_block(self):
        tracer = SpanTracer()
        with tracer.span("work") as span:
            time.sleep(0.002)
        assert span.duration_s >= 0.002
        [record] = tracer.records()
        assert record["name"] == "work"
        assert record["duration_s"] == span.duration_s

    def test_disabled_tracer_measures_but_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("work") as span:
            time.sleep(0.001)
        assert span.duration_s >= 0.001
        assert len(tracer) == 0

    def test_attributes_from_kwargs_and_set(self):
        tracer = SpanTracer()
        with tracer.span("work", design="D1") as span:
            span.set(shards=3)
        [record] = tracer.records()
        assert record["attributes"] == {"design": "D1", "shards": 3}

    def test_exception_tags_error_attribute_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(KeyError):
            with tracer.span("work"):
                raise KeyError("boom")
        [record] = tracer.records()
        assert record["attributes"]["error"] == "KeyError"


class TestNesting:
    def test_child_records_parent_id(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        inner_record, outer_record = tracer.records()  # completion order
        assert inner_record["name"] == "inner"
        assert inner_record["parent_id"] == outer_record["span_id"]

    def test_siblings_share_a_parent(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id
        assert first.span_id != second.span_id

    def test_record_inherits_the_open_span_as_parent(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            tracer.record("external", 0.25, solver="cholesky")
        external = tracer.records()[0]
        assert external["parent_id"] == outer.span_id
        assert external["duration_s"] == 0.25
        assert external["attributes"] == {"solver": "cholesky"}

    def test_record_on_disabled_tracer_is_noop(self):
        tracer = SpanTracer(enabled=False)
        tracer.record("external", 0.1)
        assert len(tracer) == 0


class TestRetentionCap:
    def test_cap_drops_and_counts(self):
        tracer = SpanTracer(cap=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2

    def test_clear_resets_records_and_dropped(self):
        tracer = SpanTracer(cap=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert list(tracer) == []
