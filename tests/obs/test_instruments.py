"""Metric instruments: counters, gauges, and the fixed-bucket histogram.

The load-bearing contract is the histogram: percentiles extracted from the
log-spaced buckets must track ``numpy.percentile`` on the raw samples to
within the bucket resolution (~10% relative width at the default 24 buckets
per decade), and bucket-wise merging must be *exact* — a histogram merged
from split sample sets is indistinguishable from one that observed them all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import NULL_REGISTRY, Counter, Gauge, LatencyHistogram, MetricsRegistry

#: Bucket width at the default resolution: 10^(1/24) ≈ 1.10, so interpolated
#: percentiles can be off by at most one bucket — 10% relative.
BUCKET_RTOL = 0.10


class TestCounter:
    def test_inc_and_snapshot(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "value": 5}

    def test_merge_adds(self):
        first, second = Counter("events"), Counter("events")
        first.inc(3)
        second.inc(7)
        first.merge(second.to_dict())
        assert first.value == 10


class TestGauge:
    def test_tracks_last_and_extremes(self):
        gauge = Gauge("queue_depth")
        for value in (4.0, 9.0, 1.0):
            gauge.set(value)
        assert gauge.last == 1.0
        assert gauge.min == 1.0
        assert gauge.max == 9.0
        assert gauge.count == 3

    def test_empty_snapshot_has_neutral_extremes(self):
        payload = Gauge("queue_depth").to_dict()
        assert payload == {"type": "gauge", "last": 0.0, "min": 0.0, "max": 0.0, "count": 0}

    def test_merge_widens_extremes_and_skips_empty(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        other = Gauge("depth")
        other.set(2.0)
        other.set(11.0)
        gauge.merge(other.to_dict())
        assert (gauge.min, gauge.max, gauge.count, gauge.last) == (2.0, 11.0, 3, 11.0)
        gauge.merge(Gauge("depth").to_dict())  # empty payload: no effect
        assert gauge.count == 3

    def test_merge_into_empty_gauge(self):
        gauge = Gauge("depth")
        other = Gauge("depth")
        other.set(3.0)
        gauge.merge(other.to_dict())
        assert (gauge.min, gauge.max, gauge.count) == (3.0, 3.0, 1)


class TestHistogramPercentiles:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_percentiles_track_numpy_on_lognormal_latencies(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=np.log(2e-3), sigma=0.9, size=4000)
        histogram = LatencyHistogram("latency")
        for value in samples:
            histogram.observe(float(value))
        for q in (50.0, 90.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            approx = histogram.percentile(q)
            assert approx == pytest.approx(exact, rel=BUCKET_RTOL)

    def test_exact_aggregates(self):
        samples = [1e-3, 4e-3, 2e-3, 9e-3]
        histogram = LatencyHistogram("latency")
        for value in samples:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(sum(samples))
        assert histogram.mean == pytest.approx(np.mean(samples))
        assert histogram.min == min(samples)
        assert histogram.max == max(samples)

    def test_extreme_ranks_clamp_to_exact_min_max(self):
        histogram = LatencyHistogram("latency")
        for value in (1.1e-3, 2.2e-3, 3.3e-3):
            histogram.observe(value)
        assert histogram.percentile(0.0) == 1.1e-3
        assert histogram.percentile(100.0) == 3.3e-3

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LatencyHistogram("latency").percentile(50.0)

    def test_out_of_range_rank_raises(self):
        histogram = LatencyHistogram("latency")
        histogram.observe(1e-3)
        with pytest.raises(ValueError, match="0, 100"):
            histogram.percentile(101.0)

    def test_under_and_overflow_are_counted(self):
        histogram = LatencyHistogram("latency", low=1e-6, high=1.0)
        histogram.observe(1e-9)   # below low
        histogram.observe(10.0)   # at/above high
        histogram.observe(1e-3)
        assert histogram.underflow == 1
        assert histogram.overflow == 1
        assert histogram.count == 3
        # Extremes stay exact even for out-of-range samples.
        assert histogram.percentile(0.0) == 1e-9
        assert histogram.percentile(100.0) == 10.0

    def test_summary_payload(self):
        histogram = LatencyHistogram("latency")
        assert LatencyHistogram("empty").summary() == {"count": 0}
        for value in np.linspace(1e-3, 5e-3, 32):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 32
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestHistogramMerge:
    def test_merge_of_split_samples_is_exact(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=np.log(1e-3), sigma=1.2, size=1000)
        whole = LatencyHistogram("latency")
        left, right = LatencyHistogram("latency"), LatencyHistogram("latency")
        for index, value in enumerate(samples):
            whole.observe(float(value))
            (left if index % 2 else right).observe(float(value))
        left.merge(right)  # object form
        merged_payload, whole_payload = left.to_dict(), whole.to_dict()
        # Totals are float sums, so the summation *order* leaks into the last
        # bits; everything discrete (buckets, counts, extremes) is exact.
        assert merged_payload.pop("total") == pytest.approx(whole_payload.pop("total"))
        assert merged_payload == whole_payload
        for q in (50.0, 95.0, 99.0):
            assert left.percentile(q) == whole.percentile(q)

    def test_merge_accepts_snapshot_dict(self):
        first, second = LatencyHistogram("latency"), LatencyHistogram("latency")
        first.observe(1e-3)
        second.observe(2e-3)
        first.merge(second.to_dict())
        assert first.count == 2

    def test_layout_mismatch_raises(self):
        default = LatencyHistogram("latency")
        coarse = LatencyHistogram("latency", buckets_per_decade=4)
        with pytest.raises(ValueError, match="bucket layout"):
            default.merge(coarse)

    def test_merging_empty_histogram_is_noop(self):
        histogram = LatencyHistogram("latency")
        histogram.observe(1e-3)
        before = histogram.to_dict()
        histogram.merge(LatencyHistogram("latency"))
        assert histogram.to_dict() == before


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.get("a") is registry.counter("a")
        assert registry.get("missing") is None

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("metric")

    def test_disabled_registry_hands_out_shared_noops(self):
        assert not NULL_REGISTRY.enabled
        counter = NULL_REGISTRY.counter("serving.requests")
        counter.inc(100)
        assert counter.value == 0
        assert NULL_REGISTRY.counter("other") is counter
        NULL_REGISTRY.gauge("g").set(5.0)
        NULL_REGISTRY.histogram("h").observe(1e-3)
        assert NULL_REGISTRY.snapshot() == {}

    def test_snapshot_merge_round_trip(self):
        source = MetricsRegistry()
        source.counter("requests").inc(5)
        source.gauge("depth").set(3.0)
        source.histogram("latency").observe(2e-3)
        target = MetricsRegistry()
        target.counter("requests").inc(1)
        target.merge_snapshot(source.snapshot())
        assert target.counter("requests").value == 6
        assert target.gauge("depth").count == 1
        assert target.histogram("latency").count == 1
        assert target.names() == ["depth", "latency", "requests"]

    def test_merge_snapshot_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            MetricsRegistry().merge_snapshot({"x": {"type": "mystery"}})

    def test_iteration_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert [name for name, _ in registry] == ["aa", "zz"]
