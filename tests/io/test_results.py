"""Tests for repro.io.results."""

import numpy as np
import pytest

from repro.io.results import (
    ExperimentRecord,
    ascii_heatmap,
    ascii_histogram,
    format_table,
    latency_throughput_columns,
    read_json,
    write_csv,
    write_json,
)


@pytest.fixture()
def records():
    return [
        ExperimentRecord("table2", "D1", {"mean_AE_mV": 0.98, "speedup": 26.0}),
        ExperimentRecord("table2", "D2", {"mean_AE_mV": 0.74, "speedup": 25.0}),
    ]


class TestFormatTable:
    def test_contains_labels_and_columns(self, records):
        text = format_table(records, title="Table 2")
        assert "Table 2" in text
        assert "D1" in text and "D2" in text
        assert "mean_AE_mV" in text

    def test_empty(self):
        assert format_table([]) == "(no records)"

    def test_value_formatting(self):
        record = ExperimentRecord("x", "row", {"tiny": 1e-6, "huge": 12345.0, "none": None})
        text = format_table([record])
        assert "1e-06" in text and "-" in text


class TestCsvJson:
    def test_csv_roundtrip_columns(self, records, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(records, path)
        content = path.read_text().splitlines()
        assert content[0] == "experiment,label,mean_AE_mV,speedup"
        assert len(content) == 3

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_json_roundtrip(self, records, tmp_path):
        path = tmp_path / "table.json"
        write_json(records, path)
        loaded = read_json(path)
        assert len(loaded) == 2
        assert loaded[0].label == "D1"
        assert loaded[0].values["mean_AE_mV"] == pytest.approx(0.98)

    def test_json_handles_numpy_types(self, tmp_path):
        record = ExperimentRecord("x", "row", {"value": np.float64(1.5), "count": np.int64(3),
                                               "vector": np.array([1.0, 2.0])})
        write_json([record], tmp_path / "np.json")
        loaded = read_json(tmp_path / "np.json")
        assert loaded[0].values["count"] == 3


class TestAsciiRenderers:
    def test_heatmap_contains_extremes(self, rng):
        values = rng.random((20, 30))
        text = ascii_heatmap(values, title="noise map")
        assert "noise map" in text
        assert "min=" in text and "max=" in text
        assert len(text.splitlines()) > 2

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(5))

    def test_heatmap_constant_map(self):
        text = ascii_heatmap(np.ones((4, 4)))
        assert len(text.splitlines()) == 4

    def test_histogram_bar_counts(self, rng):
        text = ascii_histogram(rng.standard_normal(500), bins=10, title="errors")
        lines = text.splitlines()
        assert lines[0] == "errors"
        assert len(lines) == 11


class TestLatencyThroughputColumns:
    def test_sequential_defaults(self):
        columns = latency_throughput_columns([0.01, 0.02, 0.03, 0.04])
        assert columns["p50_latency_ms"] == pytest.approx(25.0)
        assert columns["p95_latency_ms"] == pytest.approx(38.5)
        assert columns["p99_latency_ms"] == pytest.approx(39.7)
        assert columns["vectors_per_sec"] == pytest.approx(4 / 0.1)

    def test_concurrent_span_overrides_sum(self):
        # Four 10 ms requests served concurrently in a 10 ms span.
        columns = latency_throughput_columns([0.01] * 4, total_seconds=0.01)
        assert columns["vectors_per_sec"] == pytest.approx(400.0)

    def test_vector_count_override(self):
        columns = latency_throughput_columns([0.5], total_seconds=1.0, vectors=100)
        assert columns["vectors_per_sec"] == pytest.approx(100.0)

    def test_merges_into_record_values(self):
        record = ExperimentRecord("bench", "serving", {})
        record.values.update(latency_throughput_columns([0.001, 0.002]))
        assert "p50_latency_ms" in record.values
        assert "p95_latency_ms" in record.values
        assert "p99_latency_ms" in record.values
        assert "vectors_per_sec" in record.values

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_throughput_columns([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            latency_throughput_columns([0.1, -0.2])

    def test_zero_span(self):
        columns = latency_throughput_columns([0.0, 0.0])
        assert columns["vectors_per_sec"] == float("inf")
