"""Regression tests for repro.io.atomic — the shared write-then-rename helper.

Every resumable artefact (manifests, shards, reports, checkpoints) routes
through these three functions, so their contract — readers never observe a
torn file, a crashed writer leaves the target untouched — is pinned here
once instead of per-artefact.
"""

import os
from pathlib import Path

import pytest

from repro.io.atomic import atomic_replace, atomic_write_bytes, atomic_write_text


class TestAtomicReplace:
    def test_writes_target_on_success(self, tmp_path):
        target = tmp_path / "artifact.json"
        with atomic_replace(target) as temporary:
            temporary.write_text("payload")
        assert target.read_text() == "payload"

    def test_temporary_lives_in_target_directory(self, tmp_path):
        # Same directory => os.replace is a same-filesystem atomic rename.
        target = tmp_path / "deep" / "artifact.bin"
        with atomic_replace(target) as temporary:
            assert temporary.parent == target.parent
            assert f".tmp-{os.getpid()}" in temporary.name
            temporary.write_bytes(b"x")

    def test_suffix_is_preserved_on_temporary(self, tmp_path):
        # numpy.savez appends ".npz" unless the path already ends with it —
        # the suffix knob is what keeps the write landing on the yielded path.
        with atomic_replace(tmp_path / "shard.npz", suffix=".npz") as temporary:
            assert temporary.name.endswith(".npz")
            temporary.write_bytes(b"x")

    def test_exception_preserves_previous_version(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text("previous")
        with pytest.raises(RuntimeError):
            with atomic_replace(target) as temporary:
                temporary.write_text("half-writ")
                raise RuntimeError("killed mid-write")
        assert target.read_text() == "previous"

    def test_exception_cleans_up_temporary(self, tmp_path):
        target = tmp_path / "artifact.json"
        with pytest.raises(RuntimeError):
            with atomic_replace(target) as temporary:
                temporary.write_text("half-writ")
                raise RuntimeError("killed mid-write")
        assert list(tmp_path.iterdir()) == []

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.txt"
        with atomic_replace(target) as temporary:
            temporary.write_text("deep")
        assert target.read_text() == "deep"

    def test_overwrites_existing_target(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_text("old")
        with atomic_replace(target) as temporary:
            temporary.write_text("new")
        assert target.read_text() == "new"


class TestAtomicWriteHelpers:
    def test_write_text_round_trip(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_write_text(target, "héllo ∞")
        assert target.read_text(encoding="utf-8") == "héllo ∞"

    def test_write_bytes_round_trip(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01\xff")
        assert target.read_bytes() == b"\x00\x01\xff"

    def test_write_text_accepts_str_path(self, tmp_path):
        target = str(tmp_path / "note.txt")
        atomic_write_text(target, "str path")
        assert Path(target).read_text() == "str path"

    def test_no_stray_temporaries_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "note.txt", "clean")
        assert [p.name for p in tmp_path.iterdir()] == ["note.txt"]
