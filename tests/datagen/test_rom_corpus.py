"""ROM-mode corpus generation: spec carriage, shard stamping, crash resume."""

import json

import numpy as np
import pytest

from repro.datagen import (
    CorpusDesignSpec,
    CorpusSpec,
    generate_corpus,
    load_design_dataset,
)
from repro.datagen.shards import ShardRecord
from repro.sim.rom import ROMOptions


def _design(**overrides) -> CorpusDesignSpec:
    base = dict(
        label="small", design="small@8", num_vectors=6, num_steps=40,
        shard_size=2, seed=7,
    )
    base.update(overrides)
    return CorpusDesignSpec(**base)


def rom_spec(**rom_overrides) -> CorpusSpec:
    return CorpusSpec(
        designs=(_design(),), solver_mode="rom", rom=ROMOptions(**rom_overrides)
    )


class TestSpecCarriage:
    def test_full_mode_omits_solver_keys(self):
        # Hash stability: pre-seam specs must serialise (and hash) as before.
        payload = CorpusSpec(designs=(_design(),)).to_dict()
        assert "solver_mode" not in payload
        assert "rom" not in payload

    def test_rom_mode_serialises_mode_and_options(self):
        payload = rom_spec(rank=48).to_dict()
        assert payload["solver_mode"] == "rom"
        assert payload["rom"]["rank"] == 48

    def test_rom_mode_autofills_default_options(self):
        spec = CorpusSpec(designs=(_design(),), solver_mode="rom")
        assert spec.rom == ROMOptions()

    def test_round_trip_preserves_hash(self):
        spec = rom_spec(order=4, rank=48)
        clone = CorpusSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.config_hash() == spec.config_hash()

    def test_hash_sensitive_to_solver_mode_and_options(self):
        full = CorpusSpec(designs=(_design(),))
        rom = rom_spec()
        assert full.config_hash() != rom.config_hash()
        assert rom.config_hash() != rom_spec(rank=48).config_hash()

    def test_rejects_unknown_solver_mode(self):
        with pytest.raises(ValueError):
            CorpusSpec(designs=(_design(),), solver_mode="reduced")

    def test_rejects_rom_options_in_full_mode(self):
        with pytest.raises(ValueError):
            CorpusSpec(designs=(_design(),), rom=ROMOptions())


class TestShardRecordSolver:
    def _record(self, **overrides) -> ShardRecord:
        base = dict(
            label="small", index=0, start=0, stop=2,
            path="small/shard-00000.npz", num_samples=2,
            content_hash="abc", seed=7,
        )
        base.update(overrides)
        return ShardRecord(**base)

    def test_full_default_is_omitted_from_payload(self):
        payload = self._record().to_dict()
        assert "solver" not in payload
        assert ShardRecord.from_dict(payload).solver == "full"

    def test_rom_solver_round_trips(self):
        for solver in ("rom", "rom+fallback"):
            payload = self._record(solver=solver).to_dict()
            assert payload["solver"] == solver
            assert ShardRecord.from_dict(payload).solver == solver


class TestRomCorpus:
    def test_shards_are_stamped_and_labels_stay_close(self, tmp_path):
        full_report = generate_corpus(
            CorpusSpec(designs=(_design(),)), tmp_path / "full", num_workers=0
        )
        rom_report = generate_corpus(rom_spec(), tmp_path / "rom", num_workers=0)
        assert rom_report.complete
        assert all(r.solver == "rom" for r in rom_report.manifest.records)
        assert all(r.solver == "full" for r in full_report.manifest.records)

        manifest = json.loads((tmp_path / "rom" / "manifest.json").read_text())
        assert manifest["spec"]["solver_mode"] == "rom"
        assert all(record["solver"] == "rom" for record in manifest["shards"])

        rom_ds = load_design_dataset(tmp_path / "rom", "small", verify=True)
        full_ds = load_design_dataset(tmp_path / "full", "small", verify=True)
        scale = max(float(np.max(np.abs(s.target))) for s in full_ds.samples)
        for ours, theirs in zip(rom_ds.samples, full_ds.samples):
            assert ours.name == theirs.name
            np.testing.assert_allclose(
                ours.target, theirs.target, rtol=0.05, atol=0.02 * scale
            )

    def test_interrupted_then_resumed_is_identical(self, tmp_path):
        spec = rom_spec()
        full = generate_corpus(spec, tmp_path / "full", num_workers=0)

        first = generate_corpus(spec, tmp_path / "resumed", num_workers=0, max_shards=1)
        assert not first.complete and first.shards_generated == 1
        second = generate_corpus(spec, tmp_path / "resumed", num_workers=0)
        assert second.complete and second.shards_skipped == 1

        assert [r.to_dict() for r in second.manifest.records] == [
            r.to_dict() for r in full.manifest.records
        ]

    def test_fallback_shards_are_recorded(self, tmp_path):
        # A tolerance no ROM can meet forces the gate to relabel every
        # shard full-order and record the decision in the manifest.
        spec = CorpusSpec(
            designs=(_design(),), solver_mode="rom",
            rom=ROMOptions(tolerance=1e-15),
        )
        report = generate_corpus(spec, tmp_path, num_workers=0)
        assert report.complete
        assert all(r.solver == "rom+fallback" for r in report.manifest.records)
