"""Tests for repro.datagen.spec."""

import pytest

from repro.datagen.spec import CorpusDesignSpec, CorpusSpec, paper_corpus_spec


def _design(**overrides) -> CorpusDesignSpec:
    base = dict(label="small", design="small@8", num_vectors=10, shard_size=4)
    base.update(overrides)
    return CorpusDesignSpec(**base)


class TestCorpusDesignSpec:
    def test_shard_partition_covers_vectors(self):
        spec = _design(num_vectors=10, shard_size=4)
        assert spec.num_shards == 3
        bounds = [spec.shard_bounds(i) for i in range(spec.num_shards)]
        assert bounds == [(0, 4), (4, 8), (8, 10)]

    def test_exact_multiple(self):
        spec = _design(num_vectors=8, shard_size=4)
        assert spec.num_shards == 2
        assert spec.shard_bounds(1) == (4, 8)

    def test_shard_index_out_of_range(self):
        with pytest.raises(ValueError):
            _design().shard_bounds(99)

    def test_vector_config_carries_trace_shape(self):
        spec = _design(num_steps=123, dt=2e-11)
        config = spec.vector_config()
        assert config.num_steps == 123
        assert config.dt == 2e-11

    @pytest.mark.parametrize(
        "overrides",
        [
            {"label": ""},
            {"label": "a/b"},
            {"design": ""},
            {"num_vectors": 0},
            {"shard_size": 0},
            {"num_steps": 1},
            {"dt": 0.0},
            {"compression_rate": 0.0},
            {"compression_rate": 1.5},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            _design(**overrides)


class TestCorpusSpec:
    def test_requires_unique_labels(self):
        with pytest.raises(ValueError):
            CorpusSpec(designs=(_design(), _design()))

    def test_requires_designs(self):
        with pytest.raises(ValueError):
            CorpusSpec(designs=())

    def test_rejects_bad_integration_method(self):
        with pytest.raises(ValueError):
            CorpusSpec(designs=(_design(),), integration_method="forward_euler")

    def test_rejects_bad_solver(self):
        spec = CorpusSpec(designs=(_design(),), solver_method="bogus")
        # Solver validation happens when the engine is built; the options
        # object itself is permissive about solver names.
        assert spec.transient_options().solver_method == "bogus"

    def test_lookup_by_label(self):
        spec = CorpusSpec(designs=(_design(), _design(label="other")))
        assert spec.design("other").label == "other"
        with pytest.raises(KeyError):
            spec.design("missing")

    def test_totals(self):
        spec = CorpusSpec(designs=(_design(num_vectors=10, shard_size=4),
                                   _design(label="b", num_vectors=4, shard_size=4)))
        assert spec.total_vectors == 14
        assert spec.total_shards == 4


class TestConfigHash:
    def test_roundtrip_preserves_hash(self):
        spec = paper_corpus_spec(scale=0.1, num_vectors=6, num_steps=50, shard_size=3)
        clone = CorpusSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.config_hash() == spec.config_hash()

    def test_hash_sensitive_to_generation_fields(self):
        base = CorpusSpec(designs=(_design(),))
        assert base.config_hash() != CorpusSpec(designs=(_design(seed=1),)).config_hash()
        assert base.config_hash() != CorpusSpec(
            designs=(_design(),), sim_batch_size=base.sim_batch_size + 1
        ).config_hash()
        assert base.config_hash() != CorpusSpec(
            designs=(_design(),), solver_method="direct"
        ).config_hash()

    def test_hash_stable_across_processes(self):
        # Pure function of the spec fields — no ids, no timestamps.
        spec = CorpusSpec(designs=(_design(),))
        assert spec.config_hash() == CorpusSpec(designs=(_design(),)).config_hash()


class TestPaperCorpusSpec:
    def test_four_reference_designs(self):
        spec = paper_corpus_spec(scale=0.25, num_vectors=12, shard_size=6)
        assert [d.label for d in spec.designs] == ["D1", "D2", "D3", "D4"]
        assert all(d.design.endswith("@0.25") for d in spec.designs)
        assert spec.total_vectors == 48
