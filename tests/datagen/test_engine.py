"""Tests for repro.datagen.engine — determinism, resume, claims, loaders."""

import numpy as np
import pytest

from repro.datagen import (
    CorpusDesignSpec,
    CorpusSpec,
    ShardStore,
    dataset_content_hash,
    generate_corpus,
    load_corpus,
    load_design_dataset,
)
from repro.datagen.engine import shard_vectors
from repro.pdn.designs import design_from_name
from repro.workloads.dataset import build_dataset
from repro.workloads.vectors import TestVectorGenerator


def small_spec(**overrides) -> CorpusSpec:
    fields = dict(
        label="small", design="small@8", num_vectors=6, num_steps=40,
        shard_size=2, seed=7,
    )
    fields.update({k: v for k, v in overrides.items() if k != "sim_batch_size"})
    spec_kwargs = {}
    if "sim_batch_size" in overrides:
        spec_kwargs["sim_batch_size"] = overrides["sim_batch_size"]
    return CorpusSpec(designs=(CorpusDesignSpec(**fields),), **spec_kwargs)


class TestShardVectors:
    def test_matches_generate_suite_positions(self):
        spec = small_spec().designs[0]
        design = design_from_name(spec.design)
        suite = TestVectorGenerator(design, spec.vector_config()).generate_suite(
            spec.num_vectors, seed=spec.seed
        )
        collected = []
        for index in range(spec.num_shards):
            collected.extend(shard_vectors(design, spec, index))
        assert len(collected) == len(suite)
        for ours, reference in zip(collected, suite):
            assert ours.name == reference.name
            np.testing.assert_array_equal(ours.currents, reference.currents)

    def test_independent_of_shard_order(self):
        spec = small_spec().designs[0]
        design = design_from_name(spec.design)
        late_first = shard_vectors(design, spec, 2)
        early = shard_vectors(design, spec, 0)
        again_late = shard_vectors(design, spec, 2)
        for a, b in zip(late_first, again_late):
            np.testing.assert_array_equal(a.currents, b.currents)
        assert early[0].name != late_first[0].name


class TestGenerateCorpus:
    def test_generates_all_shards(self, tmp_path):
        spec = small_spec()
        report = generate_corpus(spec, tmp_path, num_workers=0)
        assert report.complete
        assert report.shards_generated == 3
        assert report.samples_generated == 6
        dataset = load_design_dataset(tmp_path, "small", verify=True)
        assert len(dataset) == 6
        assert [s.name for s in dataset.samples] == [
            f"unit-test-v{i:04d}" for i in range(6)
        ]

    def test_rerun_skips_everything(self, tmp_path):
        spec = small_spec()
        generate_corpus(spec, tmp_path, num_workers=0)
        rerun = generate_corpus(spec, tmp_path, num_workers=0)
        assert rerun.shards_generated == 0
        assert rerun.shards_skipped == 3

    def test_interrupted_then_resumed_is_identical(self, tmp_path):
        spec = small_spec()
        full_root = tmp_path / "full"
        resumed_root = tmp_path / "resumed"
        full = generate_corpus(spec, full_root, num_workers=0)

        # "Kill" the run after one shard, then resume it.
        first = generate_corpus(spec, resumed_root, num_workers=0, max_shards=1)
        assert not first.complete and first.shards_generated == 1
        second = generate_corpus(spec, resumed_root, num_workers=0)
        assert second.complete
        assert second.shards_skipped == 1

        assert [r.to_dict() for r in second.manifest.records] == [
            r.to_dict() for r in full.manifest.records
        ]
        assert dataset_content_hash(load_design_dataset(resumed_root, "small")) == (
            dataset_content_hash(load_design_dataset(full_root, "small"))
        )

    def test_reproducible_across_chunkings(self, tmp_path):
        by_two = generate_corpus(small_spec(), tmp_path / "a", num_workers=0)
        by_three = generate_corpus(
            small_spec(shard_size=3), tmp_path / "b", num_workers=0
        )
        assert by_two.manifest.config_hash != by_three.manifest.config_hash
        first = load_design_dataset(tmp_path / "a", "small")
        second = load_design_dataset(tmp_path / "b", "small")
        for a, b in zip(first.samples, second.samples):
            assert a.name == b.name
            np.testing.assert_array_equal(
                a.features.current_maps, b.features.current_maps
            )
            np.testing.assert_allclose(a.target, b.target, rtol=1e-10, atol=1e-14)

    def test_spec_mismatch_rejected(self, tmp_path):
        generate_corpus(small_spec(), tmp_path, num_workers=0)
        with pytest.raises(ValueError):
            generate_corpus(small_spec(seed=8), tmp_path, num_workers=0)

    def test_resume_false_regenerates(self, tmp_path):
        generate_corpus(small_spec(), tmp_path, num_workers=0)
        fresh = generate_corpus(small_spec(seed=8), tmp_path, num_workers=0, resume=False)
        assert fresh.complete
        assert fresh.shards_generated == 3

    def test_claimed_shard_is_deferred(self, tmp_path):
        spec = small_spec()
        store = ShardStore(tmp_path)
        store.claim("small", 1)
        # generate_corpus clears stale claims up front (it assumes it is the
        # only live run), so re-claim after manifest setup by interrupting:
        report = generate_corpus(spec, tmp_path, num_workers=0, max_shards=0)
        assert report.shards_generated == 0
        store.claim("small", 1)
        from repro.datagen.engine import _generate_shard, _worker_init, _ShardTask

        _worker_init(design_from_name)
        task = _ShardTask(
            root=str(tmp_path), label="small", index=1,
            design_spec=spec.designs[0], sim_batch_size=spec.sim_batch_size,
            solver_method=spec.solver_method,
            integration_method=spec.integration_method,
            initial_state=spec.initial_state,
        )
        outcome = _generate_shard(task)
        assert outcome["deferred"] is True
        assert not store.has_shard("small", 1)

    def test_matches_sequential_pipeline_within_tolerance(self, tmp_path):
        spec = small_spec(sim_batch_size=4)
        generate_corpus(spec, tmp_path, num_workers=0)
        factory = load_design_dataset(tmp_path, "small")
        design_spec = spec.designs[0]
        design = design_from_name(design_spec.design)
        traces = TestVectorGenerator(design, design_spec.vector_config()).generate_suite(
            design_spec.num_vectors, seed=design_spec.seed
        )
        baseline = build_dataset(
            design, traces,
            compression_rate=design_spec.compression_rate,
            rate_step=design_spec.rate_step,
        )
        for ours, theirs in zip(factory.samples, baseline.samples):
            assert ours.name == theirs.name
            np.testing.assert_array_equal(
                ours.features.current_maps.shape, theirs.features.current_maps.shape
            )
            np.testing.assert_allclose(ours.target, theirs.target, rtol=1e-9, atol=1e-13)
            np.testing.assert_allclose(
                ours.features.current_maps, theirs.features.current_maps,
                rtol=1e-12, atol=1e-15,
            )

    def test_load_corpus_returns_every_design(self, tmp_path):
        spec = CorpusSpec(
            designs=(
                CorpusDesignSpec(label="a", design="small@8", num_vectors=2,
                                 num_steps=30, shard_size=2),
                CorpusDesignSpec(label="b", design="small@10", num_vectors=2,
                                 num_steps=30, shard_size=2),
            )
        )
        generate_corpus(spec, tmp_path, num_workers=0)
        corpus = load_corpus(tmp_path, verify=True)
        assert sorted(corpus) == ["a", "b"]
        assert corpus["a"].tile_shape == (8, 8)
        assert corpus["b"].tile_shape == (10, 10)

    def test_worker_pool_matches_inline(self, tmp_path):
        spec = small_spec()
        inline_root = tmp_path / "inline"
        pool_root = tmp_path / "pool"
        generate_corpus(spec, inline_root, num_workers=0)
        report = generate_corpus(spec, pool_root, num_workers=2)
        assert report.complete
        assert dataset_content_hash(load_design_dataset(pool_root, "small")) == (
            dataset_content_hash(load_design_dataset(inline_root, "small"))
        )
