"""Tests for scenario-mix corpora: assignment, determinism, resume, e2e."""

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer
from repro.datagen import (
    CorpusDesignSpec,
    CorpusSpec,
    dataset_content_hash,
    generate_corpus,
    load_design_dataset,
)
from repro.datagen.engine import shard_vectors
from repro.pdn.designs import design_from_name
from repro.workloads import ScenarioSpec, overlay, scenario_spec

#: Eight distinct scenario families, some as parameter variants/compositions.
MIX = (
    "power_virus",
    "idle_to_turbo",
    scenario_spec("staggered_dvfs", stagger=0.1),
    "thermal_throttle",
    "memory_phase",
    scenario_spec("resonance_chirp", stop_scale=1.5),
    "didt_step_train",
    overlay("duty_cycle_sweep", "cluster_migration"),
)


def mix_spec(**overrides) -> CorpusSpec:
    fields = dict(
        label="small", design="small@6", num_vectors=16, num_steps=40,
        shard_size=4, seed=7, scenario_mix=MIX, scenario_fraction=0.5,
    )
    fields.update(overrides)
    return CorpusSpec(designs=(CorpusDesignSpec(**fields),))


class TestScenarioAssignment:
    def test_fraction_and_cycling(self):
        spec = mix_spec().designs[0]
        assignment = spec.scenario_assignment()
        assert len(assignment) == 8  # 0.5 * 16
        specs = [assignment[index] for index in sorted(assignment)]
        assert specs == [
            s if isinstance(s, ScenarioSpec) else ScenarioSpec(s) for s in MIX
        ]

    def test_assignment_independent_of_shard_size(self):
        a = mix_spec().designs[0]
        b = mix_spec(shard_size=5).designs[0]
        assert a.scenario_assignment() == b.scenario_assignment()

    def test_empty_mix_assigns_nothing(self):
        spec = CorpusDesignSpec(label="x", design="small@6", num_vectors=8)
        assert spec.scenario_assignment() == {}
        assert spec.vector_scenario(3) is None

    def test_vector_scenario_bounds_checked(self):
        spec = mix_spec().designs[0]
        with pytest.raises(ValueError):
            spec.vector_scenario(spec.num_vectors)

    def test_fraction_validated_with_mix_and_normalized_without(self):
        # Without a mix the fraction is meaningless: it is pinned back to
        # the default so the to_dict/from_dict round-trip stays an equality.
        spec = CorpusDesignSpec(label="x", design="small@6", scenario_fraction=7.0)
        assert spec.scenario_fraction == 0.5
        assert CorpusDesignSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="scenario_fraction"):
            CorpusDesignSpec(
                label="x", design="small@6",
                scenario_mix=("power_virus",), scenario_fraction=7.0,
            )

    def test_unknown_family_fails_at_spec_construction(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            CorpusDesignSpec(
                label="x", design="small@6", scenario_mix=("power_virous",)
            )
        with pytest.raises(ValueError, match="no parameter"):
            CorpusDesignSpec(
                label="x", design="small@6",
                scenario_mix=(scenario_spec("power_virus", amplitude=2.0),),
            )

    def test_mix_changes_config_hash(self):
        assert mix_spec().config_hash() != mix_spec(scenario_mix=()).config_hash()
        assert (
            mix_spec().config_hash()
            != mix_spec(scenario_fraction=0.25).config_hash()
        )


class TestScenarioMixVectors:
    def test_shard_vectors_blend_scenario_and_random(self):
        spec = mix_spec().designs[0]
        design = design_from_name(spec.design)
        traces = []
        for index in range(spec.num_shards):
            traces.extend(shard_vectors(design, spec, index))
        assert len(traces) == spec.num_vectors
        assert [t.name for t in traces] == [
            f"{design.name}-v{i:04d}" for i in range(spec.num_vectors)
        ]
        # Scenario slots differ from what the pure-random suite would put
        # there; random slots are bit-identical to the mix-free corpus.
        random_spec = mix_spec(scenario_mix=()).designs[0]
        random_traces = []
        for index in range(random_spec.num_shards):
            random_traces.extend(shard_vectors(design, random_spec, index))
        assignment = spec.scenario_assignment()
        for index, (mixed, random) in enumerate(zip(traces, random_traces)):
            if index in assignment:
                assert not np.array_equal(mixed.currents, random.currents)
            else:
                np.testing.assert_array_equal(mixed.currents, random.currents)

    def test_scenario_vectors_deterministic_per_index(self):
        spec = mix_spec().designs[0]
        design = design_from_name(spec.design)
        a = shard_vectors(design, spec, 0)
        b = shard_vectors(design, spec, 0)
        for first, second in zip(a, b):
            np.testing.assert_array_equal(first.currents, second.currents)


class TestScenarioMixCorpus:
    def test_interrupted_mix_corpus_resumes_to_identical_manifest(self, tmp_path):
        spec = mix_spec()
        full = generate_corpus(spec, tmp_path / "full", num_workers=0)
        assert full.complete

        interrupted = generate_corpus(
            spec, tmp_path / "resumed", num_workers=0, max_shards=2
        )
        assert not interrupted.complete
        resumed = generate_corpus(spec, tmp_path / "resumed", num_workers=0)
        assert resumed.complete and resumed.shards_skipped == 2

        assert [r.to_dict() for r in resumed.manifest.records] == [
            r.to_dict() for r in full.manifest.records
        ]
        assert dataset_content_hash(
            load_design_dataset(tmp_path / "resumed", "small")
        ) == dataset_content_hash(load_design_dataset(tmp_path / "full", "small"))

    @pytest.mark.slow
    def test_mix_corpus_trains_end_to_end(self, tmp_path):
        # Acceptance path: a corpus whose mix covers 8 distinct scenario
        # families loads through load_design_dataset and trains via the
        # batched engine.
        spec = mix_spec()
        report = generate_corpus(spec, tmp_path, num_workers=0)
        assert report.complete
        dataset = load_design_dataset(tmp_path, "small", verify=True)
        assert len(dataset) == 16
        design = design_from_name("small@6")
        trainer = NoiseModelTrainer(
            dataset,
            design=design,
            model_config=ModelConfig(
                distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0
            ),
            training_config=TrainingConfig(
                epochs=2, batch_size=4, early_stopping_patience=None, seed=1
            ),
        )
        result = trainer.train()
        assert result.history.num_epochs == 2
        assert np.isfinite(result.history.train_loss[-1])
