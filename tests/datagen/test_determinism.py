"""Fresh-run determinism: the contracts the golden baselines stand on.

Baseline gating (``repro.eval``) only works if the whole pipeline is a pure
function of its seeds: two *fresh* runs — new processes' worth of state, new
directories, any parallelism — must produce bit-identical corpora and
bit-identical training trajectories.  These tests pin that contract for the
datagen manifest and for both training engines (the shared-stream shuffle
contract introduced with the batched engine).
"""

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer
from repro.datagen import CorpusDesignSpec, CorpusSpec, generate_corpus


def two_design_spec() -> CorpusSpec:
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small", design="small@6", num_vectors=4, num_steps=30,
                shard_size=2, seed=3,
            ),
            CorpusDesignSpec(
                label="D1", design="D1@0.1", num_vectors=4, num_steps=30,
                shard_size=2, seed=3,
            ),
        ),
        sim_batch_size=4,
    )


def manifest_content(report) -> list[dict]:
    """The deterministic part of a manifest: every shard record."""
    return [record.to_dict() for record in report.manifest.records]


class TestCorpusDeterminism:
    def test_two_fresh_runs_produce_identical_manifests(self, tmp_path):
        first = generate_corpus(two_design_spec(), tmp_path / "a", num_workers=0)
        second = generate_corpus(two_design_spec(), tmp_path / "b", num_workers=0)
        assert first.complete and second.complete
        assert manifest_content(first) == manifest_content(second)

    def test_parallel_run_matches_inline_run(self, tmp_path):
        inline = generate_corpus(two_design_spec(), tmp_path / "inline", num_workers=0)
        pooled = generate_corpus(two_design_spec(), tmp_path / "pooled", num_workers=2)
        assert manifest_content(inline) == manifest_content(pooled)


def _fresh_training(tiny_dataset, tiny_design, sequential: bool):
    """One from-scratch training run (fresh trainer, fresh split, fresh model)."""
    trainer = NoiseModelTrainer(
        tiny_dataset,
        design=tiny_design,
        model_config=ModelConfig(
            distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0
        ),
        training_config=TrainingConfig(
            epochs=3, batch_size=4, sequential=sequential,
            early_stopping_patience=None, seed=5,
        ),
    )
    return trainer.train()


class TestTrainerDeterminism:
    @pytest.mark.parametrize("sequential", [False, True])
    def test_fresh_runs_have_bit_identical_loss_curves(
        self, tiny_dataset, tiny_design, sequential
    ):
        first = _fresh_training(tiny_dataset, tiny_design, sequential)
        second = _fresh_training(tiny_dataset, tiny_design, sequential)
        # == on float lists: bit-identical, not merely close.
        assert first.history.train_loss == second.history.train_loss
        assert first.history.validation_loss == second.history.validation_loss
        assert first.history.best_epoch == second.history.best_epoch
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(value, second.model.state_dict()[name])
        np.testing.assert_array_equal(first.split.train, second.split.train)

    def test_fresh_runs_share_one_shuffle_stream(self, tiny_dataset, tiny_design):
        # The engines must agree on minibatch composition (same seed -> same
        # stream); their curves differ only by float re-association, so the
        # first pre-shuffle epoch's losses are within re-association distance.
        batched = _fresh_training(tiny_dataset, tiny_design, sequential=False)
        sequential = _fresh_training(tiny_dataset, tiny_design, sequential=True)
        np.testing.assert_allclose(
            batched.history.train_loss, sequential.history.train_loss, rtol=1e-9
        )
