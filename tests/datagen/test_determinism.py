"""Fresh-run determinism: the contracts the golden baselines stand on.

Baseline gating (``repro.eval``) only works if the whole pipeline is a pure
function of its seeds: two *fresh* runs — new processes' worth of state, new
directories, any parallelism — must produce bit-identical corpora and
bit-identical training trajectories.  These tests pin that contract for the
datagen manifest and for both training engines (the shared-stream shuffle
contract introduced with the batched engine).
"""

import os
import signal

import numpy as np
import pytest

from repro import faults
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer
from repro.datagen import CorpusDesignSpec, CorpusSpec, generate_corpus


def two_design_spec() -> CorpusSpec:
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small", design="small@6", num_vectors=4, num_steps=30,
                shard_size=2, seed=3,
            ),
            CorpusDesignSpec(
                label="D1", design="D1@0.1", num_vectors=4, num_steps=30,
                shard_size=2, seed=3,
            ),
        ),
        sim_batch_size=4,
    )


def manifest_content(report) -> list[dict]:
    """The deterministic part of a manifest: every shard record."""
    return [record.to_dict() for record in report.manifest.records]


class TestCorpusDeterminism:
    def test_two_fresh_runs_produce_identical_manifests(self, tmp_path):
        first = generate_corpus(two_design_spec(), tmp_path / "a", num_workers=0)
        second = generate_corpus(two_design_spec(), tmp_path / "b", num_workers=0)
        assert first.complete and second.complete
        assert manifest_content(first) == manifest_content(second)

    def test_parallel_run_matches_inline_run(self, tmp_path):
        inline = generate_corpus(two_design_spec(), tmp_path / "inline", num_workers=0)
        pooled = generate_corpus(two_design_spec(), tmp_path / "pooled", num_workers=2)
        assert manifest_content(inline) == manifest_content(pooled)


class KillWorkerOnceMidWrite(faults.FaultInjector):
    """Picklable injector factory that SIGKILLs one pool worker mid-write.

    The kill fires inside the ``datagen.shard_write`` seam of shard
    ``small:1`` — between the temp-file write and the atomic rename, the
    worst possible instant.  An ``O_EXCL`` marker file on the shared
    filesystem makes it exactly-once across every process that ever installs
    this injector, so the retried attempt (and the engine's inline fallback
    in the parent) survive.
    """

    def __init__(self, marker: str):
        self.marker = marker

    def __call__(self) -> "KillWorkerOnceMidWrite":
        return self

    def during_shard_write(self, label, index, temporary):
        if (label, index) != ("small", 1):
            return
        try:
            handle = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(handle)
        os.kill(os.getpid(), signal.SIGKILL)


class TestPoolWorkerKill:
    def test_sigkilled_pool_worker_still_yields_identical_corpus(self, tmp_path):
        # A real SIGKILL against a pool worker mid-shard-write: the parent
        # sees a broken pool, clears the dead worker's claim, finishes the
        # remaining shards inline — and the corpus must be byte-identical to
        # a run where nothing died.
        clean = generate_corpus(two_design_spec(), tmp_path / "clean", num_workers=0)
        factory = KillWorkerOnceMidWrite(str(tmp_path / "killed.marker"))
        try:
            survived = generate_corpus(
                two_design_spec(),
                tmp_path / "killed",
                num_workers=2,
                faults_factory=factory,
            )
            if not survived.complete:
                # Tearing down the broken pool can strand claims of workers
                # that were still alive when the fallback scanned for stale
                # ones; a resumed run clears them and finishes the deferred
                # shards — exactly the operator playbook after a preemption.
                survived = generate_corpus(
                    two_design_spec(), tmp_path / "killed", num_workers=0
                )
        finally:
            # The engine's inline fallback installs the factory's injector in
            # this process; restore the inert default for neighbouring tests.
            faults.install(None)
        assert (tmp_path / "killed.marker").exists(), "the scripted kill never fired"
        assert survived.complete
        assert manifest_content(survived) == manifest_content(clean)
        assert (tmp_path / "killed" / "manifest.json").read_bytes() == (
            tmp_path / "clean" / "manifest.json"
        ).read_bytes()


def _fresh_training(tiny_dataset, tiny_design, sequential: bool):
    """One from-scratch training run (fresh trainer, fresh split, fresh model)."""
    trainer = NoiseModelTrainer(
        tiny_dataset,
        design=tiny_design,
        model_config=ModelConfig(
            distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0
        ),
        training_config=TrainingConfig(
            epochs=3, batch_size=4, sequential=sequential,
            early_stopping_patience=None, seed=5,
        ),
    )
    return trainer.train()


class TestTrainerDeterminism:
    @pytest.mark.parametrize("sequential", [False, True])
    def test_fresh_runs_have_bit_identical_loss_curves(
        self, tiny_dataset, tiny_design, sequential
    ):
        first = _fresh_training(tiny_dataset, tiny_design, sequential)
        second = _fresh_training(tiny_dataset, tiny_design, sequential)
        # == on float lists: bit-identical, not merely close.
        assert first.history.train_loss == second.history.train_loss
        assert first.history.validation_loss == second.history.validation_loss
        assert first.history.best_epoch == second.history.best_epoch
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(value, second.model.state_dict()[name])
        np.testing.assert_array_equal(first.split.train, second.split.train)

    def test_fresh_runs_share_one_shuffle_stream(self, tiny_dataset, tiny_design):
        # The engines must agree on minibatch composition (same seed -> same
        # stream); their curves differ only by float re-association, so the
        # first pre-shuffle epoch's losses are within re-association distance.
        batched = _fresh_training(tiny_dataset, tiny_design, sequential=False)
        sequential = _fresh_training(tiny_dataset, tiny_design, sequential=True)
        np.testing.assert_allclose(
            batched.history.train_loss, sequential.history.train_loss, rtol=1e-9
        )
