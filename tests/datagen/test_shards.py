"""Tests for repro.datagen.shards (store, manifest, claims, hashing)."""

import json

import numpy as np
import pytest

from repro.datagen.shards import (
    CorpusManifest,
    ShardRecord,
    ShardStore,
    dataset_content_hash,
    git_revision,
    load_design_dataset,
)
from repro.datagen.spec import CorpusDesignSpec, CorpusSpec


@pytest.fixture()
def spec():
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small", design="small@8", num_vectors=6, num_steps=40, shard_size=3
            ),
        )
    )


class TestContentHash:
    def test_ignores_sim_runtime(self, tiny_dataset):
        before = dataset_content_hash(tiny_dataset)
        copy = tiny_dataset.subset(range(len(tiny_dataset)))
        for sample in copy.samples:
            sample.sim_runtime = 123.456
        # Samples are shared between subset views; hash both ways to prove
        # runtime never enters the digest.
        assert dataset_content_hash(copy) == before
        assert dataset_content_hash(tiny_dataset) == before

    def test_sensitive_to_targets(self, tiny_dataset):
        before = dataset_content_hash(tiny_dataset)
        view = tiny_dataset.subset(range(len(tiny_dataset)))
        view.samples[0] = type(view.samples[0])(
            features=view.samples[0].features,
            target=view.samples[0].target + 1e-12,
            hotspot_map=view.samples[0].hotspot_map,
            sim_runtime=view.samples[0].sim_runtime,
            name=view.samples[0].name,
        )
        assert dataset_content_hash(view) != before

    def test_sensitive_to_sample_order(self, tiny_dataset):
        forward = dataset_content_hash(tiny_dataset)
        reversed_view = tiny_dataset.subset(range(len(tiny_dataset) - 1, -1, -1))
        assert dataset_content_hash(reversed_view) != forward


class TestGitRevision:
    def test_returns_string(self):
        revision = git_revision()
        assert isinstance(revision, str) and revision
        # Either a hex commit hash or the documented fallback.
        assert revision == "unknown" or len(revision) == 40

    def test_unknown_outside_repo(self, tmp_path):
        assert git_revision(tmp_path) == "unknown"


class TestShardStore:
    def test_atomic_write_and_readback(self, tmp_path, tiny_dataset):
        store = ShardStore(tmp_path)
        content_hash = store.write_shard("small", 0, tiny_dataset)
        assert store.has_shard("small", 0)
        loaded = store.read_shard("small", 0)
        assert dataset_content_hash(loaded) == content_hash
        # No temp debris left behind.
        assert list(tmp_path.glob("small/*.tmp*")) == []

    def test_claim_is_exclusive(self, tmp_path):
        store_a = ShardStore(tmp_path)
        store_b = ShardStore(tmp_path)
        assert store_a.claim("small", 0)
        # A second writer (another process in real life) must lose the race.
        assert not store_b.claim("small", 0)
        store_a.release("small", 0)
        assert store_b.claim("small", 0)
        store_b.release("small", 0)

    def test_release_is_idempotent(self, tmp_path):
        store = ShardStore(tmp_path)
        store.release("small", 0)  # nothing claimed — must not raise
        assert store.claim("small", 0)
        store.release("small", 0)
        store.release("small", 0)

    def test_clear_stale_claims_keeps_live_owners(self, tmp_path):
        import subprocess

        store = ShardStore(tmp_path)
        # A claim held by this (very much alive) process must survive.
        store.claim("small", 0)
        # A claim whose owner has exited is stale.
        exited = subprocess.Popen(["true"])
        exited.wait()
        (tmp_path / "small").mkdir(parents=True, exist_ok=True)
        (tmp_path / "small/shard-00001.claim").write_text(str(exited.pid))
        # An unreadable claim (writer died mid-write) is stale too.
        (tmp_path / "small/shard-00002.claim").write_text("not-a-pid")
        removed = store.clear_stale_claims()
        assert removed == 2
        assert not store.claim("small", 0)  # live claim still fencing
        store.release("small", 0)


class TestManifest:
    def test_save_load_roundtrip(self, tmp_path, spec):
        manifest = CorpusManifest(spec, git_rev="deadbeef")
        manifest.add(
            ShardRecord(
                label="small", index=0, start=0, stop=3,
                path="small/shard-00000.npz", num_samples=3,
                content_hash="abc", seed=0,
            )
        )
        path = tmp_path / "manifest.json"
        manifest.save(path)
        loaded = CorpusManifest.load(path)
        assert loaded.config_hash == spec.config_hash()
        assert loaded.git_rev == "deadbeef"
        assert loaded.is_complete("small", 0)
        assert not loaded.is_complete("small", 1)
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in manifest.records
        ]

    def test_completed_designs(self, spec):
        # The spec has 6 vectors in shards of 3 -> exactly two shards.
        manifest = CorpusManifest(spec)
        assert manifest.completed_designs() == []
        manifest.add(
            ShardRecord(
                label="small", index=0, start=0, stop=3,
                path="small/shard-00000.npz", num_samples=3,
                content_hash="x", seed=0,
            )
        )
        assert manifest.completed_designs() == []
        manifest.add(
            ShardRecord(
                label="small", index=1, start=3, stop=6,
                path="small/shard-00001.npz", num_samples=3,
                content_hash="x", seed=0,
            )
        )
        assert manifest.completed_designs() == ["small"]

    def test_rejects_unknown_version(self, tmp_path, spec):
        manifest = CorpusManifest(spec)
        path = tmp_path / "manifest.json"
        manifest.save(path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            CorpusManifest.load(path)


class TestLoaders:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_design_dataset(tmp_path, "small")

    def test_incomplete_design_rejected(self, tmp_path, spec, tiny_dataset):
        store = ShardStore(tmp_path)
        manifest = CorpusManifest(spec)
        store.save_manifest(manifest)
        with pytest.raises(ValueError):
            load_design_dataset(tmp_path, "small")

    def test_verify_catches_corruption(self, tmp_path, tiny_design):
        from repro.datagen import generate_corpus

        spec = CorpusSpec(
            designs=(
                CorpusDesignSpec(
                    label="small", design="small@8", num_vectors=4,
                    num_steps=30, shard_size=2,
                ),
            )
        )
        generate_corpus(spec, tmp_path, num_workers=0)
        store = ShardStore(tmp_path)
        shard = store.read_shard("small", 0)
        shard.samples[0].target[:] += 1.0
        shard.save(store.shard_path("small", 0), compress=False)
        assert isinstance(load_design_dataset(tmp_path, "small"), object)  # lenient load
        with pytest.raises(ValueError):
            load_design_dataset(tmp_path, "small", verify=True)
