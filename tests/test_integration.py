"""End-to-end integration tests across subsystems.

These exercise the full paper flow on deliberately tiny configurations:
design generation -> workload synthesis -> ground-truth simulation ->
feature extraction -> CNN training -> prediction -> metric reporting, plus
the package-level public API.
"""

import numpy as np
import pytest

import repro
from repro.core import ModelConfig, PipelineConfig, TrainingConfig, WorstCaseNoiseFramework
from repro.io import ExperimentRecord, format_table
from repro.sim import DynamicNoiseAnalysis, run_static_analysis
from repro.workloads import build_scenario


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        assert callable(repro.reference_design)
        assert callable(repro.small_test_design)
        assert hasattr(repro, "WorstCaseNoiseFramework")

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestStaticVsDynamicConsistency:
    def test_dynamic_worst_case_exceeds_static(self, tiny_design, tiny_traces):
        static = run_static_analysis(tiny_design)
        dynamic = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt).run(tiny_traces[0])
        # The dynamic worst case includes the resonance-driven first droop and
        # must be at least as severe as the static IR map under any realistic
        # excitation where currents reach nominal levels.
        assert dynamic.worst_noise > 0
        assert dynamic.tile_noise.max() >= 0.3 * static.tile_map.max()

    def test_scenarios_produce_distinct_noise_levels(self, tiny_design):
        dt = 1e-11
        analysis = DynamicNoiseAnalysis(tiny_design, dt)
        virus = analysis.run(build_scenario("power_virus", tiny_design, num_steps=120, dt=dt))
        steady = analysis.run(build_scenario("steady_state", tiny_design, num_steps=120, dt=dt))
        assert virus.worst_noise > steady.worst_noise


@pytest.mark.slow
class TestEndToEndFramework:
    @pytest.fixture(scope="class")
    def result(self, tiny_design):
        config = PipelineConfig(
            num_vectors=16,
            num_steps=80,
            compression_rate=0.35,
            model=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=6, seed=0),
            training=TrainingConfig(epochs=30, learning_rate=3e-3, batch_size=4,
                                    early_stopping_patience=None, seed=0),
            seed=1,
        )
        return WorstCaseNoiseFramework(tiny_design, config).run()

    def test_learns_something(self, result):
        # After a short training run the CNN must beat the trivial predictor
        # that outputs the mean training noise map everywhere.
        truth = result.truth_test_maps
        train_mean = np.mean(
            [result.dataset.samples[i].target for i in result.split.train], axis=0
        )
        trivial_error = np.mean(np.abs(truth - train_mean[np.newaxis]))
        model_error = result.report.mean_ae
        assert model_error < trivial_error

    def test_prediction_faster_than_simulation_per_vector(self, result):
        # Per-vector CNN inference should not be slower than the transient
        # simulation even on this tiny design (it is dramatically faster on
        # the larger reference designs).
        assert result.runtime.predictor_seconds < 5 * result.runtime.simulator_seconds

    def test_report_serialises_into_experiment_record(self, result):
        record = ExperimentRecord("table2", result.design_name, result.summary())
        text = format_table([record])
        assert result.design_name in text

    def test_hotspot_auc_better_than_chance(self, result):
        assert result.report.auc > 0.6
