"""Tests for repro.resilience.retry — bounded retry with injectable backoff."""

import pytest

from repro.faults import WorkerKilled
from repro.resilience import RetryPolicy, run_with_retry


class TestRetryPolicy:
    def test_delay_schedule_is_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, backoff_factor=2.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_zero_backoff_means_immediate_retries(self):
        policy = RetryPolicy(backoff_s=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(7) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -0.1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRunWithRetry:
    def test_first_success_runs_once_without_metrics(self, counter_value):
        calls = []
        result = run_with_retry(lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1
        assert counter_value("faults.errors") == 0
        assert counter_value("faults.retries") == 0

    def test_transient_failures_are_retried_with_recorded_backoff(
        self, counter_value
    ):
        attempts = []
        slept = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise RuntimeError(f"attempt {len(attempts)}")
            return "recovered"

        policy = RetryPolicy(max_attempts=3, backoff_s=0.5, backoff_factor=2.0)
        result = run_with_retry(flaky, policy, sleep=slept.append)
        assert result == "recovered"
        assert len(attempts) == 3
        # First retry backs off 0.5 s, second 1.0 s — recorded, not slept.
        assert slept == [pytest.approx(0.5), pytest.approx(1.0)]
        assert counter_value("faults.errors") == 2
        assert counter_value("faults.retries") == 2
        assert counter_value("faults.exhausted") == 0

    def test_exhaustion_reraises_last_error(self, counter_value):
        def always_fails():
            raise ValueError("persistent")

        with pytest.raises(ValueError, match="persistent"):
            run_with_retry(
                always_fails,
                RetryPolicy(max_attempts=3, backoff_s=0.0),
                sleep=lambda _: None,
            )
        assert counter_value("faults.errors") == 3
        assert counter_value("faults.retries") == 2
        assert counter_value("faults.exhausted") == 1

    def test_single_attempt_policy_disables_retries(self, counter_value):
        calls = []

        def fails():
            calls.append(1)
            raise RuntimeError("once")

        with pytest.raises(RuntimeError):
            run_with_retry(fails, RetryPolicy(max_attempts=1))
        assert len(calls) == 1
        assert counter_value("faults.retries") == 0

    def test_worker_killed_is_never_retried(self):
        calls = []

        def killed():
            calls.append(1)
            raise WorkerKilled("preempted")

        with pytest.raises(WorkerKilled):
            run_with_retry(killed, RetryPolicy(max_attempts=5, backoff_s=0.0))
        assert len(calls) == 1

    def test_retry_on_filters_exception_types(self):
        calls = []

        def raises_type_error():
            calls.append(1)
            raise TypeError("not retryable here")

        with pytest.raises(TypeError):
            run_with_retry(
                raises_type_error,
                RetryPolicy(max_attempts=5, backoff_s=0.0),
                retry_on=(ValueError,),
            )
        assert len(calls) == 1
