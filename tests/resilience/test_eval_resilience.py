"""Eval campaigns under fault injection: per-row retry, quarantine, health.

The sweep/evaluator execution logic is exercised with stubbed row workers
(the real rows train models and run sign-off simulations — far too heavy to
fail three times per scenario), while the seam placement itself is verified
against the real row functions, which raise at ``eval.row`` before touching
any expensive state.
"""

import dataclasses
import json

import pytest

from repro import faults
from repro.core.metrics import AccuracyReport
from repro.eval import CrossDesignEvaluator, ScenarioSweep, budget
from repro.eval.protocol import CrossDesignReport, HeldoutEvaluation
from repro.eval.sweep import SWEEP_NAME
from repro.faults import ScriptedFaults, WorkerKilled
from repro.resilience import RetryPolicy

#: Retry without wall-clock waits.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


def small_grid(**overrides):
    """The tiny budget shrunk to a 2x2 sweep grid with two held-out designs."""
    config = dataclasses.replace(
        budget("tiny"),
        heldout=("D2", "D3"),
        scenarios=("power_virus",),
        scenario_steps=(32,),
        scenario_seeds=(0,),
    )
    return dataclasses.replace(config, **overrides) if overrides else config


def fake_heldout_row(heldout: str) -> HeldoutEvaluation:
    return HeldoutEvaluation(
        heldout=heldout,
        trained_on=("D1",),
        num_train_samples=4,
        num_vectors=6,
        accuracy=AccuracyReport(
            mean_ae=0.001, mean_re=0.01, p99_ae=0.002, p99_re=0.02,
            max_ae=0.003, max_re=0.03, hotspot_missing_rate=0.0, auc=0.9,
            num_vectors=6, num_tiles=64,
        ),
        hotspot_precision=1.0,
        hotspot_recall=1.0,
    )


class FlakyRows:
    """Stub row worker raising scripted per-key failures before recovering."""

    def __init__(self, failures_by_key, build=lambda key: {"ok": True, "key": key}):
        self.remaining = dict(failures_by_key)
        self.build = build
        self.calls = []

    def __call__(self, key: str):
        self.calls.append(key)
        if self.remaining.get(key, 0) > 0:
            self.remaining[key] -= 1
            raise RuntimeError(f"flaky row {key}")
        return self.build(key)


class TestSweepResilience:
    def _make_sweep(self, monkeypatch, workdir, flaky, config=None):
        import repro.eval.sweep as sweep_module

        monkeypatch.setattr(
            sweep_module, "_run_sweep_job", lambda job: flaky(job.key)
        )
        return ScenarioSweep(config or small_grid(), workdir, retry=FAST_RETRY)

    def test_transient_row_failure_is_retried(
        self, monkeypatch, tmp_path, counter_value
    ):
        sweep = self._make_sweep(monkeypatch, tmp_path, FlakyRows({}))
        keys = [job.key for job in sweep.jobs()]
        flaky = FlakyRows({keys[0]: 1})
        sweep = self._make_sweep(monkeypatch, tmp_path, flaky)
        records = sweep.run(num_workers=0)
        assert len(records) == len(keys) == 2
        assert sweep.load_quarantined() == {}
        assert counter_value("faults.errors") == 1
        assert counter_value("faults.retries") == 1

    def test_exhausted_row_is_quarantined_with_health_section(
        self, monkeypatch, tmp_path, counter_value
    ):
        config = small_grid()
        keys = [job.key for job in ScenarioSweep(config, tmp_path).jobs()]
        flaky = FlakyRows({keys[0]: 99})
        sweep = self._make_sweep(monkeypatch, tmp_path, flaky, config)
        records = sweep.run(num_workers=0)
        # The healthy row completed; the poisoned one is quarantined.
        assert [record.label for record in records] == [keys[1]]
        quarantined = sweep.load_quarantined()
        assert set(quarantined) == {keys[0]}
        assert quarantined[keys[0]]["attempts"] == FAST_RETRY.max_attempts
        assert "flaky row" in quarantined[keys[0]]["error"]
        payload = json.loads((tmp_path / SWEEP_NAME).read_text())
        assert payload["health"] == {"rows_completed": 1, "rows_quarantined": 1}
        assert counter_value("faults.quarantined_rows") == 1
        assert counter_value("faults.exhausted") == 1

    def test_resumed_sweep_reattempts_quarantined_rows(self, monkeypatch, tmp_path):
        config = small_grid()
        keys = [job.key for job in ScenarioSweep(config, tmp_path).jobs()]
        sweep = self._make_sweep(monkeypatch, tmp_path, FlakyRows({keys[0]: 99}), config)
        sweep.run(num_workers=0)
        assert set(sweep.load_quarantined()) == {keys[0]}
        # The flake clears (new deploy, transient infra fixed): a resumed run
        # re-attempts the quarantined row and the quarantine empties.
        healthy = self._make_sweep(monkeypatch, tmp_path, FlakyRows({}), config)
        records = healthy.run(num_workers=0)
        assert sorted(record.label for record in records) == sorted(keys)
        assert healthy.load_quarantined() == {}

    def test_worker_killed_unwinds_the_sweep(self, monkeypatch, tmp_path):
        def killed(key):
            raise WorkerKilled("preempted")

        sweep = self._make_sweep(monkeypatch, tmp_path, killed)
        with pytest.raises(WorkerKilled):
            sweep.run(num_workers=0)

    def test_real_row_worker_fires_the_seam_first(self, tmp_path):
        import repro.eval.sweep as sweep_module

        # Initialise worker state against an empty registry: the scripted
        # fault must fire before the job touches designs or checkpoints.
        sweep_module._worker_init(str(tmp_path), {}, 1e-11)
        job = sweep_module.SweepJob(
            heldout="nonexistent", scenario="power_virus", num_steps=8, seed=0
        )
        scripted = ScriptedFaults().fail_at("eval.row", 0, RuntimeError("row fault"))
        with faults.injected(scripted):
            with pytest.raises(RuntimeError, match="row fault"):
                sweep_module._run_sweep_job(job)
        assert scripted.fired == [("eval.row", 0)]


class TestEvaluatorResilience:
    def _make_evaluator(self, workdir, flaky, config=None):
        evaluator = CrossDesignEvaluator(
            config or small_grid(), workdir, retry=FAST_RETRY
        )
        evaluator.ensure_corpus = lambda num_workers=None: None
        evaluator.evaluate_heldout = flaky
        return evaluator

    def test_transient_heldout_failure_is_retried(self, tmp_path, counter_value):
        flaky = FlakyRows({"D2": 1}, build=fake_heldout_row)
        evaluator = self._make_evaluator(tmp_path, flaky)
        report = evaluator.run(num_workers=0)
        assert set(report.rows) == {"D2", "D3"}
        assert report.quarantined == {}
        assert flaky.calls == ["D2", "D2", "D3"]
        assert counter_value("faults.retries") == 1

    def test_exhausted_heldout_is_quarantined_and_campaign_continues(
        self, tmp_path, counter_value
    ):
        flaky = FlakyRows({"D2": 99}, build=fake_heldout_row)
        evaluator = self._make_evaluator(tmp_path, flaky)
        report = evaluator.run(num_workers=0)
        assert set(report.rows) == {"D3"}
        assert set(report.quarantined) == {"D2"}
        assert report.quarantined["D2"]["attempts"] == FAST_RETRY.max_attempts
        assert "flaky row" in report.quarantined["D2"]["error"]
        assert report.health()["rows_completed"] == 1
        assert report.health()["rows_quarantined"] == 1
        assert counter_value("faults.quarantined_rows") == 1
        # The artefact on disk carries the health section.
        payload = json.loads(evaluator.report_path.read_text())
        assert payload["health"]["rows_quarantined"] == 1
        assert set(payload["quarantined"]) == {"D2"}

    def test_resumed_campaign_clears_the_quarantine(self, tmp_path):
        evaluator = self._make_evaluator(
            tmp_path, FlakyRows({"D2": 99}, build=fake_heldout_row)
        )
        evaluator.run(num_workers=0)
        healthy = self._make_evaluator(tmp_path, FlakyRows({}, build=fake_heldout_row))
        report = healthy.run(num_workers=0)
        assert set(report.rows) == {"D2", "D3"}
        assert report.quarantined == {}
        reloaded = CrossDesignReport.load(healthy.report_path)
        assert reloaded.quarantined == {}

    def test_report_round_trips_quarantine(self, tmp_path):
        report = CrossDesignReport(config_hash="abc")
        report.quarantined["D9"] = {"error": "RuntimeError('x')", "attempts": 3}
        report.save(tmp_path / "report.json")
        reloaded = CrossDesignReport.load(tmp_path / "report.json")
        assert reloaded.quarantined == report.quarantined
        assert reloaded.health()["rows_quarantined"] == 1

    def test_legacy_report_without_quarantine_loads(self, tmp_path):
        report = CrossDesignReport(config_hash="abc")
        payload = report.to_dict()
        del payload["quarantined"]
        del payload["health"]
        (tmp_path / "report.json").write_text(json.dumps(payload))
        reloaded = CrossDesignReport.load(tmp_path / "report.json")
        assert reloaded.quarantined == {}

    def test_worker_killed_unwinds_the_campaign(self, tmp_path):
        def killed(heldout):
            raise WorkerKilled("preempted")

        evaluator = self._make_evaluator(tmp_path, killed)
        with pytest.raises(WorkerKilled):
            evaluator.run(num_workers=0)

    def test_real_evaluate_heldout_fires_the_seam_first(self, tmp_path):
        # No corpus exists in the workdir: the scripted fault must fire
        # before the row tries to load datasets or train anything.
        evaluator = CrossDesignEvaluator(small_grid(), tmp_path)
        scripted = ScriptedFaults().fail_at("eval.row", 0, RuntimeError("row fault"))
        with faults.injected(scripted):
            with pytest.raises(RuntimeError, match="row fault"):
                evaluator.evaluate_heldout("D3")
        assert scripted.fired == [("eval.row", 0)]
