"""Datagen under fault injection: retries, quarantine, corruption recovery.

Everything runs inline (``num_workers=0``) with scripted injectors and
zero-backoff retry policies, so the scenarios are deterministic and fast;
the real-SIGKILL pool scenario lives in ``tests/datagen/test_determinism.py``
and the cross-process chaos drill in ``test_chaos_e2e.py``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro import faults
from repro.datagen import (
    GenerationPolicy,
    generate_corpus,
    load_corpus,
    load_design_dataset,
)
from repro.datagen.shards import MANIFEST_NAME, ShardStore
from repro.faults import ScriptedFaults
from repro.resilience import CorruptShardError, RetryPolicy, ShardFailedError

#: Retry without wall-clock waits, for scripted-fault scenarios.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)

FAST_POLICY = GenerationPolicy(retry=FAST_RETRY)


def manifest_records(report):
    return [record.to_dict() for record in report.manifest.records]


def manifest_bytes(root) -> bytes:
    return (root / MANIFEST_NAME).read_bytes()


class PoisonFaults(ScriptedFaults):
    """Scripted injector that additionally NaN-poisons chosen vectors.

    ``poison`` maps ``(label, shard_index)`` to sample positions whose
    simulated labels are overwritten with NaN — modelling a solver blow-up
    the quarantine scan must catch.  Mutation happens on the freshly built
    dataset, so it is deterministic across runs and processes.
    """

    def __init__(self, poison):
        super().__init__()
        self.poison = dict(poison)

    def on_shard_dataset(self, label, index, dataset):
        dataset = super().on_shard_dataset(label, index, dataset)
        for position in self.poison.get((label, index), ()):
            dataset.samples[position].target[...] = np.nan
        return dataset


class TestShardRetry:
    def test_transient_failure_is_retried_to_a_clean_manifest(
        self, tmp_path, make_spec, counter_value
    ):
        clean = generate_corpus(make_spec(), tmp_path / "clean", num_workers=0)
        scripted = ScriptedFaults().fail_at(
            "datagen.shard", 0, RuntimeError("transient worker wobble")
        )
        with faults.injected(scripted):
            faulty = generate_corpus(
                make_spec(), tmp_path / "faulty", num_workers=0, policy=FAST_POLICY
            )
        assert faulty.complete
        assert scripted.fired == [("datagen.shard", 0)]
        assert manifest_records(faulty) == manifest_records(clean)
        assert counter_value("faults.errors") == 1
        assert counter_value("faults.retries") == 1
        assert counter_value("faults.exhausted") == 0

    def test_exhausted_shard_raises_after_other_shards_complete(
        self, tmp_path, make_spec, counter_value
    ):
        # Shard 0 fails on every attempt; shard 1 must still land on disk
        # and in the manifest before the typed error surfaces.  Seam ordinals:
        # wave 1 runs both shards (0 -> shard 0, 1 -> shard 1), later waves
        # re-run only shard 0 (ordinals 2, 3).
        scripted = (
            ScriptedFaults()
            .fail_at("datagen.shard", 0, RuntimeError("persistent fault"))
            .fail_at("datagen.shard", 2, RuntimeError("persistent fault"))
            .fail_at("datagen.shard", 3, RuntimeError("persistent fault"))
        )
        with faults.injected(scripted):
            with pytest.raises(ShardFailedError) as excinfo:
                generate_corpus(
                    make_spec(), tmp_path, num_workers=0, policy=FAST_POLICY
                )
        error = excinfo.value
        assert [(f["label"], f["index"]) for f in error.failures] == [("small", 0)]
        assert error.failures[0]["attempts"] == FAST_RETRY.max_attempts
        assert "persistent fault" in error.failures[0]["error"]
        report = error.report
        assert report.shards_failed == 1
        assert report.shards_generated == 1
        assert report.manifest.is_complete("small", 1)
        assert counter_value("faults.exhausted") == 1

    def test_failed_run_resumes_to_the_clean_manifest(self, tmp_path, make_spec):
        clean = generate_corpus(make_spec(), tmp_path / "clean", num_workers=0)
        scripted = (
            ScriptedFaults()
            .fail_at("datagen.shard", 0, RuntimeError("down"))
            .fail_at("datagen.shard", 2, RuntimeError("down"))
            .fail_at("datagen.shard", 3, RuntimeError("down"))
        )
        with faults.injected(scripted):
            with pytest.raises(ShardFailedError):
                generate_corpus(
                    make_spec(), tmp_path / "faulty", num_workers=0, policy=FAST_POLICY
                )
        resumed = generate_corpus(make_spec(), tmp_path / "faulty", num_workers=0)
        assert resumed.complete
        assert manifest_records(resumed) == manifest_records(clean)
        assert manifest_bytes(tmp_path / "faulty") == manifest_bytes(tmp_path / "clean")

    def test_solver_seam_failures_are_also_retried(self, tmp_path, make_spec):
        scripted = ScriptedFaults().fail_at(
            "sim.solve", 0, RuntimeError("factorisation hiccup")
        )
        with faults.injected(scripted):
            report = generate_corpus(
                make_spec(), tmp_path, num_workers=0, policy=FAST_POLICY
            )
        assert report.complete
        assert scripted.fired == [("sim.solve", 0)]


class TestQuarantine:
    def test_poisoned_vectors_are_quarantined_not_fatal(
        self, tmp_path, make_spec, counter_value
    ):
        injector = PoisonFaults({("small", 0): [1]})
        with faults.injected(injector):
            report = generate_corpus(make_spec(), tmp_path, num_workers=0)
        assert report.complete
        assert report.vectors_quarantined == 1
        quarantined = report.manifest.quarantined
        assert len(quarantined) == 1
        entry = quarantined[0]
        assert entry["label"] == "small"
        assert entry["index"] == 0
        assert entry["reason"] == "nonfinite_label"
        assert entry["key"].endswith("-v0001")
        assert counter_value("faults.quarantined_vectors") == 1

    def test_quarantined_corpus_loads_finite(self, tmp_path, make_spec):
        spec = make_spec()
        with faults.injected(PoisonFaults({("small", 0): [0], ("small", 1): [1]})):
            generate_corpus(spec, tmp_path, num_workers=0)
        datasets = load_corpus(tmp_path)
        dataset = datasets["small"]
        # One vector gone from each shard; the survivors are finite.
        assert len(dataset) == spec.designs[0].num_vectors - 2
        for sample in dataset.samples:
            assert np.all(np.isfinite(sample.target))

    def test_quarantine_is_deterministic_across_fresh_runs(self, tmp_path, make_spec):
        for root in ("a", "b"):
            with faults.injected(PoisonFaults({("small", 1): [0]})):
                generate_corpus(make_spec(), tmp_path / root, num_workers=0)
        assert manifest_bytes(tmp_path / "a") == manifest_bytes(tmp_path / "b")

    def test_quarantine_survives_manifest_round_trip(self, tmp_path, make_spec):
        with faults.injected(PoisonFaults({("small", 0): [1]})):
            report = generate_corpus(make_spec(), tmp_path, num_workers=0)
        store = ShardStore(tmp_path)
        reloaded = store.load_manifest()
        assert reloaded.quarantined == report.manifest.quarantined

    def test_quarantine_can_be_disabled_by_policy(self, tmp_path, make_spec):
        policy = dataclasses.replace(FAST_POLICY, quarantine=False)
        with faults.injected(PoisonFaults({("small", 0): [1]})):
            report = generate_corpus(
                make_spec(), tmp_path, num_workers=0, policy=policy
            )
        assert report.vectors_quarantined == 0
        assert report.manifest.quarantined == []
        # The poison stays in the shard — exactly what the policy asked for.
        dataset = load_design_dataset(tmp_path, "small")
        assert any(
            not np.all(np.isfinite(sample.target)) for sample in dataset.samples
        )

    def test_manifest_without_quarantine_key_still_loads(self, tmp_path, make_spec):
        # Manifests written before the resilience layer lack the key.
        generate_corpus(make_spec(), tmp_path, num_workers=0)
        manifest_path = tmp_path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        del payload["quarantined"]
        manifest_path.write_text(json.dumps(payload))
        manifest = ShardStore(tmp_path).load_manifest()
        assert manifest.quarantined == []


class TestCorruptionRecovery:
    def test_corrupt_shard_is_regenerated_on_resume(
        self, tmp_path, make_spec, counter_value
    ):
        first = generate_corpus(make_spec(), tmp_path, num_workers=0)
        store = ShardStore(tmp_path)
        shard_path = store.shard_path("small", 1)
        shard_path.write_bytes(b"bit-rotted to oblivion")
        resumed = generate_corpus(make_spec(), tmp_path, num_workers=0)
        assert resumed.complete
        assert resumed.shards_regenerated == 1
        assert resumed.shards_skipped == 1
        assert counter_value("faults.corrupt_shards") == 1
        assert manifest_records(resumed) == manifest_records(first)
        # The regenerated shard verifies again.
        store.read_shard("small", 1, expected_hash=first.manifest.get("small", 1).content_hash)

    def test_truncated_shard_is_regenerated_on_resume(self, tmp_path, make_spec):
        generate_corpus(make_spec(), tmp_path, num_workers=0)
        shard_path = ShardStore(tmp_path).shard_path("small", 0)
        payload = shard_path.read_bytes()
        shard_path.write_bytes(payload[: len(payload) // 3])
        resumed = generate_corpus(make_spec(), tmp_path, num_workers=0)
        assert resumed.complete
        assert resumed.shards_regenerated == 1

    def test_bit_flipped_shard_is_regenerated_on_resume(self, tmp_path, make_spec):
        # A flip deep in the payload keeps the file readable but changes the
        # content hash — only verification catches it.
        generate_corpus(make_spec(), tmp_path, num_workers=0)
        shard_path = ShardStore(tmp_path).shard_path("small", 0)
        payload = bytearray(shard_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        shard_path.write_bytes(bytes(payload))
        resumed = generate_corpus(make_spec(), tmp_path, num_workers=0)
        assert resumed.complete
        assert resumed.shards_regenerated == 1

    def test_verification_can_be_disabled_by_policy(self, tmp_path, make_spec):
        generate_corpus(make_spec(), tmp_path, num_workers=0)
        shard_path = ShardStore(tmp_path).shard_path("small", 0)
        corrupted = b"trusted blindly"
        shard_path.write_bytes(corrupted)
        policy = dataclasses.replace(FAST_POLICY, verify_resume=False)
        resumed = generate_corpus(make_spec(), tmp_path, num_workers=0, policy=policy)
        assert resumed.shards_regenerated == 0
        assert resumed.shards_skipped == 2
        assert shard_path.read_bytes() == corrupted


class TestCorruptShardError:
    def test_truncated_shard_load_raises_typed_error(self, tmp_path, make_spec):
        spec = make_spec()
        report = generate_corpus(spec, tmp_path, num_workers=0)
        expected_hash = report.manifest.get("small", 0).content_hash
        shard_path = ShardStore(tmp_path).shard_path("small", 0)
        payload = shard_path.read_bytes()
        shard_path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CorruptShardError) as excinfo:
            load_design_dataset(tmp_path, "small", verify=True)
        error = excinfo.value
        assert error.path == shard_path
        assert error.expected_hash == expected_hash
        assert error.actual_hash is None  # unreadable, no hash to compare
        assert str(shard_path) in str(error)
        assert expected_hash[:12] in str(error)

    def test_bit_flip_reports_expected_and_actual_hashes(self, tmp_path, make_spec):
        report = generate_corpus(make_spec(), tmp_path, num_workers=0)
        expected_hash = report.manifest.get("small", 0).content_hash
        shard_path = ShardStore(tmp_path).shard_path("small", 0)
        payload = bytearray(shard_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        shard_path.write_bytes(bytes(payload))
        try:
            load_design_dataset(tmp_path, "small", verify=True)
        except CorruptShardError as error:
            # Readable-but-wrong may surface as a hash mismatch (both hashes
            # known) or as an unreadable archive depending on where the flip
            # landed; either way the typed error names path and expectation.
            assert error.expected_hash == expected_hash
            assert error.path == shard_path
        else:
            pytest.fail("corrupt shard loaded without error")

    def test_corrupt_shard_error_is_a_value_error(self):
        # Legacy catch sites used ValueError; the typed error must still land.
        assert issubclass(CorruptShardError, ValueError)

    def test_unverified_load_still_wraps_unreadable_files(self, tmp_path, make_spec):
        generate_corpus(make_spec(), tmp_path, num_workers=0)
        ShardStore(tmp_path).shard_path("small", 0).write_bytes(b"junk")
        with pytest.raises(CorruptShardError):
            load_design_dataset(tmp_path, "small", verify=False)
