"""Tests for repro.faults — the shared deterministic fault-injection layer."""

import pytest

from repro import faults, obs
from repro.faults import (
    NULL_FAULTS,
    FaultInjector,
    ScriptedFaults,
    WorkerKilled,
)


class TestDefaultInjector:
    def test_active_defaults_to_inert_injector(self):
        assert faults.active() is NULL_FAULTS

    def test_null_hooks_are_no_ops_returning_inputs(self):
        injector = FaultInjector()
        sentinel = object()
        assert injector.on_dequeue(0, sentinel) == (sentinel,)
        assert injector.on_shard_dataset("small", 0, sentinel) is sentinel
        # The pure side-effect seams simply do nothing.
        injector.before_shard("small", 0)
        injector.during_shard_write("small", 0, None)
        injector.before_solve("small", 4)
        injector.on_train_step(0, 0, None)
        injector.before_row("row")

    def test_install_returns_previous_and_none_restores_default(self):
        scripted = ScriptedFaults()
        previous = faults.install(scripted)
        assert previous is NULL_FAULTS
        assert faults.active() is scripted
        assert faults.install(None) is scripted
        assert faults.active() is NULL_FAULTS

    def test_injected_context_manager_restores_previous(self):
        scripted = ScriptedFaults()
        with faults.injected(scripted) as active:
            assert active is scripted
            assert faults.active() is scripted
        assert faults.active() is NULL_FAULTS

    def test_injected_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.injected(ScriptedFaults()):
                raise RuntimeError("boom")
        assert faults.active() is NULL_FAULTS


class TestWorkerKilled:
    def test_is_base_exception_not_exception(self):
        # except Exception (the retry/quarantine net) must never catch a kill.
        assert issubclass(WorkerKilled, BaseException)
        assert not issubclass(WorkerKilled, Exception)

    def test_passes_through_an_except_exception_handler(self):
        def handler():
            try:
                raise WorkerKilled("preempted")
            except Exception:  # the pipeline's retry net
                return "swallowed"

        with pytest.raises(WorkerKilled):
            handler()


class TestScriptedFaults:
    def test_fires_at_exact_ordinal_only(self):
        scripted = ScriptedFaults().fail_at("sim.solve", 2, RuntimeError("third"))
        scripted.before_solve("d", 1)
        scripted.before_solve("d", 1)
        with pytest.raises(RuntimeError, match="third"):
            scripted.before_solve("d", 1)
        scripted.before_solve("d", 1)  # later calls are clean again
        assert scripted.calls["sim.solve"] == 4
        assert scripted.fired == [("sim.solve", 2)]

    def test_seams_count_independently(self):
        scripted = ScriptedFaults().fail_at("eval.row", 0, ValueError("row"))
        scripted.before_shard("small", 0)  # datagen.shard ordinal 0: clean
        with pytest.raises(ValueError):
            scripted.before_row("key")
        assert scripted.calls == {"datagen.shard": 1, "eval.row": 1}

    def test_error_factory_builds_fresh_errors(self):
        scripted = ScriptedFaults().fail_at(
            "datagen.shard", 0, lambda: WorkerKilled("fresh")
        )
        with pytest.raises(WorkerKilled):
            scripted.before_shard("small", 0)

    def test_fired_faults_tick_injected_counter(self):
        scripted = ScriptedFaults().fail_at("training.step", 0, RuntimeError("x"))
        with pytest.raises(RuntimeError):
            scripted.on_train_step(0, 0, None)
        assert obs.metrics().counter("faults.injected").value == 1

    def test_dataset_seam_passes_value_through(self):
        scripted = ScriptedFaults()
        sentinel = object()
        assert scripted.on_shard_dataset("small", 0, sentinel) is sentinel

    def test_fail_at_is_chainable(self):
        scripted = (
            ScriptedFaults()
            .fail_at("datagen.shard", 0, RuntimeError("a"))
            .fail_at("datagen.shard", 1, RuntimeError("b"))
        )
        with pytest.raises(RuntimeError, match="a"):
            scripted.before_shard("small", 0)
        with pytest.raises(RuntimeError, match="b"):
            scripted.before_shard("small", 1)


class TestGatewayShim:
    def test_gateway_reexports_the_shared_objects(self):
        from repro.gateway import faults as gateway_faults

        assert gateway_faults.FaultInjector is FaultInjector
        assert gateway_faults.WorkerKilled is WorkerKilled
        assert gateway_faults.NULL_FAULTS is NULL_FAULTS
