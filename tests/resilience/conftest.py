"""Fixtures for the resilience suite.

The fault-injection layer keeps one process-global injector and the
observability context keeps process-global counters; every test here runs
between resets of both, so no scripted fault or counter value can leak into
a neighbouring test.  A tiny one-design corpus spec is shared as a factory
(specs are frozen, so tests can't corrupt each other's copy).
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.datagen import CorpusDesignSpec, CorpusSpec


@pytest.fixture(autouse=True)
def pristine_faults():
    """Restore the inert injector and a fresh metrics context around every test.

    Observability is switched *on* for the test body — the suite asserts
    ``faults.*`` counter values, which the disabled default's null registry
    would silently swallow.
    """
    faults.install(None)
    obs.reset()
    obs.configure(enabled=True)
    yield
    faults.install(None)
    obs.reset()


def tiny_spec(num_vectors: int = 4, shard_size: int = 2, seed: int = 3) -> CorpusSpec:
    """A one-design corpus small enough to regenerate many times per test."""
    return CorpusSpec(
        designs=(
            CorpusDesignSpec(
                label="small",
                design="small@6",
                num_vectors=num_vectors,
                num_steps=24,
                shard_size=shard_size,
                seed=seed,
            ),
        ),
        sim_batch_size=4,
    )


@pytest.fixture()
def make_spec():
    """Factory for the tiny one-design corpus spec."""
    return tiny_spec


@pytest.fixture()
def counter_value():
    """Reader for a counter's current value in the active metrics registry."""

    def read(name: str) -> int:
        return obs.metrics().counter(name).value

    return read
