"""Preemption-safe training: checkpoints, bit-identical resume, rollback."""

import numpy as np
import pytest

from repro import faults
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer
from repro.faults import FaultInjector, ScriptedFaults, WorkerKilled
from repro.resilience import CheckpointManager, CheckpointPolicy, DivergenceError

MODEL_CONFIG = ModelConfig(
    distance_kernels=3, fusion_kernels=3, prediction_kernels=3, seed=0
)


def training_config(epochs: int, sequential: bool = False) -> TrainingConfig:
    return TrainingConfig(
        epochs=epochs,
        batch_size=4,
        sequential=sequential,
        early_stopping_patience=None,
        seed=5,
    )


def make_trainer(dataset, design, epochs, checkpoint_dir=None, sequential=False, **policy):
    checkpointing = None
    if checkpoint_dir is not None:
        checkpointing = CheckpointPolicy(directory=checkpoint_dir, **policy)
    return NoiseModelTrainer(
        dataset,
        design=design,
        model_config=MODEL_CONFIG,
        training_config=training_config(epochs, sequential),
        checkpointing=checkpointing,
    )


class PoisonWeightsOnce(FaultInjector):
    """Overwrites the model's first parameter with NaN at one (epoch, step).

    Models a numeric blow-up mid-training: the epoch's loss goes non-finite
    and the divergence guard must roll back.  Fires once, so the re-run after
    rollback is clean.
    """

    def __init__(self, epoch: int, step: int):
        self.epoch = epoch
        self.step = step
        self.fired = False

    def on_train_step(self, epoch, step, model):
        if not self.fired and (epoch, step) == (self.epoch, self.step):
            self.fired = True
            parameter = next(iter(model.parameters()))
            parameter.data = np.full_like(parameter.data, np.nan)


class TestCheckpointCadence:
    def test_checkpoints_written_at_policy_cadence(
        self, tmp_path, tiny_dataset, tiny_design, counter_value
    ):
        trainer = make_trainer(
            tiny_dataset, tiny_design, epochs=4, checkpoint_dir=tmp_path,
            every_epochs=2, keep=4,
        )
        trainer.train()
        manager = CheckpointManager(trainer.checkpointing)
        assert [epoch for epoch, _ in manager.available()] == [1, 3]
        assert counter_value("faults.checkpoints") == 2

    def test_no_checkpointing_without_a_policy(self, tiny_dataset, tiny_design, counter_value):
        make_trainer(tiny_dataset, tiny_design, epochs=2).train()
        assert counter_value("faults.checkpoints") == 0

    def test_keep_prunes_old_checkpoints(self, tmp_path, tiny_dataset, tiny_design):
        trainer = make_trainer(
            tiny_dataset, tiny_design, epochs=5, checkpoint_dir=tmp_path, keep=2
        )
        trainer.train()
        manager = CheckpointManager(trainer.checkpointing)
        assert [epoch for epoch, _ in manager.available()] == [3, 4]


class TestResume:
    @pytest.mark.parametrize("sequential", [False, True])
    def test_interrupt_resume_is_bit_identical(
        self, tmp_path, tiny_dataset, tiny_design, sequential, counter_value
    ):
        uninterrupted = make_trainer(
            tiny_dataset, tiny_design, epochs=6, sequential=sequential
        ).train()

        # Kill the run mid-epoch-3 (ordinal 6 = epoch 3, step 0: two
        # minibatch steps per epoch with 7 train samples at batch size 4).
        scripted = ScriptedFaults().fail_at(
            "training.step", 6, WorkerKilled("preempted")
        )
        checkpoint_dir = tmp_path / "ckpts"
        with faults.injected(scripted):
            with pytest.raises(WorkerKilled):
                make_trainer(
                    tiny_dataset, tiny_design, epochs=6,
                    checkpoint_dir=checkpoint_dir, sequential=sequential,
                ).train()

        resumed = make_trainer(
            tiny_dataset, tiny_design, epochs=6,
            checkpoint_dir=checkpoint_dir, sequential=sequential,
        ).train()

        # == on float lists: bit-identical, not merely close.
        assert resumed.history.train_loss == uninterrupted.history.train_loss
        assert resumed.history.validation_loss == uninterrupted.history.validation_loss
        assert resumed.history.best_epoch == uninterrupted.history.best_epoch
        for name, value in uninterrupted.model.state_dict().items():
            np.testing.assert_array_equal(value, resumed.model.state_dict()[name])
        assert counter_value("faults.resumes") == 1

    def test_resume_of_a_finished_run_changes_nothing(
        self, tmp_path, tiny_dataset, tiny_design
    ):
        first = make_trainer(
            tiny_dataset, tiny_design, epochs=3, checkpoint_dir=tmp_path
        ).train()
        again = make_trainer(
            tiny_dataset, tiny_design, epochs=3, checkpoint_dir=tmp_path
        ).train()
        assert again.history.train_loss == first.history.train_loss
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(value, again.model.state_dict()[name])

    def test_resume_extends_a_shorter_run(self, tmp_path, tiny_dataset, tiny_design):
        # Train 3 epochs, then ask for 6 from the same checkpoint directory:
        # the result must be bit-identical to training 6 epochs in one go.
        uninterrupted = make_trainer(tiny_dataset, tiny_design, epochs=6).train()
        make_trainer(
            tiny_dataset, tiny_design, epochs=3, checkpoint_dir=tmp_path
        ).train()
        extended = make_trainer(
            tiny_dataset, tiny_design, epochs=6, checkpoint_dir=tmp_path
        ).train()
        assert extended.history.train_loss == uninterrupted.history.train_loss
        assert (
            extended.history.validation_loss == uninterrupted.history.validation_loss
        )
        for name, value in uninterrupted.model.state_dict().items():
            np.testing.assert_array_equal(value, extended.model.state_dict()[name])

    def test_resume_survives_a_corrupt_latest_checkpoint(
        self, tmp_path, tiny_dataset, tiny_design, counter_value
    ):
        scripted = ScriptedFaults().fail_at(
            "training.step", 8, WorkerKilled("preempted")
        )
        with faults.injected(scripted):
            with pytest.raises(WorkerKilled):
                make_trainer(
                    tiny_dataset, tiny_design, epochs=6,
                    checkpoint_dir=tmp_path, keep=3,
                ).train()
        # Bit-rot the newest checkpoint; resume must fall back to the next.
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        newest = manager.available()[-1][1]
        newest.write_bytes(b"rotten")
        resumed = make_trainer(
            tiny_dataset, tiny_design, epochs=6, checkpoint_dir=tmp_path, keep=3
        ).train()
        uninterrupted = make_trainer(tiny_dataset, tiny_design, epochs=6).train()
        assert resumed.history.train_loss == uninterrupted.history.train_loss
        assert counter_value("faults.corrupt_checkpoints") == 1


class TestDivergenceGuard:
    def test_nan_epoch_rolls_back_and_recovers(
        self, tmp_path, tiny_dataset, tiny_design, counter_value
    ):
        uninterrupted = make_trainer(tiny_dataset, tiny_design, epochs=4).train()
        injector = PoisonWeightsOnce(epoch=2, step=0)
        with faults.injected(injector):
            recovered = make_trainer(
                tiny_dataset, tiny_design, epochs=4, checkpoint_dir=tmp_path
            ).train()
        assert injector.fired
        assert counter_value("faults.rollbacks") == 1
        # The rollback restored model + optimiser + RNG from the epoch-1
        # checkpoint, so the re-run is bit-identical to never diverging.
        assert recovered.history.train_loss == uninterrupted.history.train_loss
        assert all(np.isfinite(recovered.history.train_loss))
        for name, value in uninterrupted.model.state_dict().items():
            np.testing.assert_array_equal(value, recovered.model.state_dict()[name])

    def test_rollback_budget_exhaustion_raises_typed_error(
        self, tmp_path, tiny_dataset, tiny_design
    ):
        injector = PoisonWeightsOnce(epoch=1, step=0)
        with faults.injected(injector):
            with pytest.raises(DivergenceError) as excinfo:
                make_trainer(
                    tiny_dataset, tiny_design, epochs=4,
                    checkpoint_dir=tmp_path, max_rollbacks=0,
                ).train()
        assert excinfo.value.epoch == 1
        assert "non-finite" in excinfo.value.detail

    def test_divergence_without_guard_still_finishes(self, tiny_dataset, tiny_design):
        # Without a checkpoint policy there is no guard: the run keeps the
        # historical behaviour (NaN losses recorded, no exception).
        injector = PoisonWeightsOnce(epoch=1, step=0)
        with faults.injected(injector):
            result = make_trainer(tiny_dataset, tiny_design, epochs=3).train()
        assert any(not np.isfinite(loss) for loss in result.history.train_loss)


class TestPooledTrainingSeam:
    def test_pooled_trainer_calls_the_step_seam(self, tiny_dataset):
        from repro.eval.training import MultiDesignTrainer

        scripted = ScriptedFaults()
        trainer = MultiDesignTrainer(
            {"a": tiny_dataset, "b": tiny_dataset},
            model_config=MODEL_CONFIG,
            training_config=training_config(epochs=1),
        )
        with faults.injected(scripted):
            trainer.train()
        assert scripted.calls.get("training.step", 0) > 0
