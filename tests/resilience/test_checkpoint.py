"""Tests for repro.resilience.checkpoint and the optimiser state contract."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    CheckpointPolicy,
    TrainingCheckpoint,
    divergence_detail,
)


def make_checkpoint(epoch: int, seed: int = 0) -> TrainingCheckpoint:
    rng = np.random.default_rng(seed)
    generator = np.random.default_rng(seed + 100)
    return TrainingCheckpoint(
        epoch=epoch,
        model_state={"conv.weight": rng.normal(size=(3, 3)), "conv.bias": rng.normal(size=3)},
        best_state={"conv.weight": rng.normal(size=(3, 3)), "conv.bias": rng.normal(size=3)},
        optimizer_state={
            "kind": "adam",
            "step_count": 7,
            "first_moment": rng.normal(size=12),
            "second_moment": rng.normal(size=12) ** 2,
        },
        rng_state=generator.bit_generator.state,
        train_loss=[0.5, 0.4][: epoch + 1],
        validation_loss=[0.6, 0.45][: epoch + 1],
        best_epoch=epoch,
        best_validation_loss=0.45,
        epochs_without_improvement=0,
    )


class TestCheckpointManager:
    def test_save_load_round_trip_is_exact(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        saved = make_checkpoint(epoch=1)
        path = manager.save(saved)
        loaded = manager.load(path)
        assert loaded.epoch == saved.epoch
        assert loaded.train_loss == saved.train_loss
        assert loaded.validation_loss == saved.validation_loss
        assert loaded.best_epoch == saved.best_epoch
        assert loaded.best_validation_loss == saved.best_validation_loss
        assert loaded.epochs_without_improvement == saved.epochs_without_improvement
        # The RNG bit-generator state round-trips exactly through JSON —
        # including PCG64's arbitrary-precision integers.
        assert loaded.rng_state == saved.rng_state
        for name, value in saved.model_state.items():
            np.testing.assert_array_equal(loaded.model_state[name], value)
        for name, value in saved.best_state.items():
            np.testing.assert_array_equal(loaded.best_state[name], value)
        assert loaded.optimizer_state["kind"] == "adam"
        assert loaded.optimizer_state["step_count"] == 7
        np.testing.assert_array_equal(
            loaded.optimizer_state["first_moment"],
            saved.optimizer_state["first_moment"],
        )

    def test_checkpoints_counter_ticks_per_save(self, tmp_path, counter_value):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        manager.save(make_checkpoint(epoch=0))
        manager.save(make_checkpoint(epoch=1))
        assert counter_value("faults.checkpoints") == 2

    def test_latest_returns_newest_epoch(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path, keep=5))
        for epoch in (0, 1, 2):
            manager.save(make_checkpoint(epoch=epoch, seed=epoch))
        assert manager.latest().epoch == 2

    def test_latest_skips_corrupt_newest_with_counter(self, tmp_path, counter_value):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path, keep=5))
        manager.save(make_checkpoint(epoch=0))
        manager.save(make_checkpoint(epoch=1))
        # Bit-rot the newest file: latest() must fall back to epoch 0.
        manager.path_for(1).write_bytes(b"not an npz archive")
        restored = manager.latest()
        assert restored.epoch == 0
        assert counter_value("faults.corrupt_checkpoints") == 1

    def test_latest_on_empty_directory_is_none(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path / "none"))
        assert manager.latest() is None

    def test_prune_keeps_newest_files(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path, keep=2))
        for epoch in range(4):
            manager.save(make_checkpoint(epoch=epoch, seed=epoch))
        assert [epoch for epoch, _ in manager.available()] == [2, 3]

    def test_load_unreadable_file_raises_checkpoint_error(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        bad = tmp_path / "ckpt-000009.npz"
        bad.write_bytes(b"\x00" * 32)
        with pytest.raises(CheckpointError, match="unreadable"):
            manager.load(bad)

    def test_load_truncated_file_raises_checkpoint_error(self, tmp_path):
        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        path = manager.save(make_checkpoint(epoch=0))
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError):
            manager.load(path)

    def test_version_mismatch_raises_checkpoint_error(self, tmp_path, monkeypatch):
        import repro.resilience.checkpoint as checkpoint_module

        manager = CheckpointManager(CheckpointPolicy(directory=tmp_path))
        path = manager.save(make_checkpoint(epoch=0))
        monkeypatch.setattr(checkpoint_module, "CHECKPOINT_VERSION", 99)
        with pytest.raises(CheckpointError, match="version"):
            manager.load(path)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_epochs": 0},
            {"keep": 0},
            {"max_rollbacks": -1},
        ],
    )
    def test_invalid_policies_are_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, **kwargs)


class TestOptimizerStateDict:
    def _parameters(self, seed=0):
        rng = np.random.default_rng(seed)
        return [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=3))]

    def _step(self, optimizer, parameters, seed):
        rng = np.random.default_rng(seed)
        for parameter in parameters:
            parameter.grad = rng.normal(size=parameter.data.shape)
        optimizer.step()

    @pytest.mark.parametrize("kind", ["sgd", "adam"])
    def test_restored_optimizer_takes_bit_identical_steps(self, kind):
        make = (
            (lambda ps: SGD(ps, learning_rate=0.1, momentum=0.9))
            if kind == "sgd"
            else (lambda ps: Adam(ps, learning_rate=0.01))
        )
        # Reference: 3 uninterrupted steps.
        reference = self._parameters()
        optimizer = make(reference)
        for seed in (1, 2, 3):
            self._step(optimizer, reference, seed)

        # Candidate: 2 steps, state round-trip into a fresh optimizer, 1 step.
        candidate = self._parameters()
        first = make(candidate)
        for seed in (1, 2):
            self._step(first, candidate, seed)
        second = make(candidate)
        second.load_state_dict(first.state_dict())
        self._step(second, candidate, 3)

        for expected, actual in zip(reference, candidate):
            np.testing.assert_array_equal(expected.data, actual.data)

    def test_kind_mismatch_is_rejected(self):
        sgd_state = SGD(self._parameters(), learning_rate=0.1).state_dict()
        adam = Adam(self._parameters(), learning_rate=0.1)
        with pytest.raises(ValueError, match="'sgd', not 'adam'"):
            adam.load_state_dict(sgd_state)

    def test_size_mismatch_is_rejected(self):
        small = Adam(self._parameters(), learning_rate=0.1)
        rng = np.random.default_rng(0)
        big = Adam([Parameter(rng.normal(size=(9, 9)))], learning_rate=0.1)
        with pytest.raises(ValueError):
            small.load_state_dict(big.state_dict())


class TestDivergenceDetail:
    def test_healthy_epoch_is_none(self):
        assert divergence_detail(0.5, 0.4, True) is None

    def test_nan_train_loss_is_reported(self):
        detail = divergence_detail(float("nan"), 0.4, True)
        assert "train loss" in detail and "non-finite" in detail

    def test_nan_validation_only_counts_with_validation_set(self):
        # Empty validation partitions report NaN by convention — not a
        # divergence.
        assert divergence_detail(0.5, float("nan"), False) is None
        assert divergence_detail(0.5, float("nan"), True) is not None

    def test_infinite_train_loss_is_reported(self):
        assert divergence_detail(float("inf"), 0.4, False) is not None
