"""Tests for repro.sim.dynamic_noise."""

import numpy as np
import pytest

from repro.sim.dynamic_noise import DynamicNoiseAnalysis, worst_case_summary
from repro.sim.transient import TransientOptions
from repro.sim.waveform import CurrentTrace


@pytest.fixture(scope="module")
def analysis_and_result(tiny_design, tiny_traces):
    analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
    return analysis, analysis.run(tiny_traces[0])


class TestDynamicNoiseAnalysis:
    def test_tile_map_shape(self, tiny_design, analysis_and_result):
        _, result = analysis_and_result
        assert result.tile_noise.shape == tiny_design.tile_grid.shape
        assert result.node_noise.shape == (tiny_design.mna.num_die_nodes,)

    def test_worst_noise_equals_tile_maximum(self, analysis_and_result):
        _, result = analysis_and_result
        assert result.worst_noise == pytest.approx(result.node_noise.max())
        assert result.max_tile_noise == pytest.approx(result.worst_noise, rel=1e-9)

    def test_hotspot_map_consistent_with_threshold(self, tiny_design, analysis_and_result):
        _, result = analysis_and_result
        threshold = tiny_design.spec.hotspot_threshold
        np.testing.assert_array_equal(result.hotspot_map, result.tile_noise > threshold)
        assert 0.0 <= result.hotspot_ratio <= 1.0

    def test_runtime_recorded(self, analysis_and_result):
        _, result = analysis_and_result
        assert result.runtime_seconds > 0

    def test_run_many_reuses_engine(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        results = analysis.run_many(tiny_traces[:3])
        assert len(results) == 3
        assert all(r.tile_noise.shape == tiny_design.tile_grid.shape for r in results)

    def test_scaling_currents_scales_noise(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        base = analysis.run(tiny_traces[0])
        double = analysis.run(tiny_traces[0].scaled(2.0))
        # The PDN is linear: doubling all currents doubles every droop.
        np.testing.assert_allclose(double.tile_noise, 2.0 * base.tile_noise, rtol=1e-6)

    def test_more_current_more_hotspots(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        base = analysis.run(tiny_traces[0])
        double = analysis.run(tiny_traces[0].scaled(2.0))
        assert double.hotspot_ratio >= base.hotspot_ratio

    def test_rejects_bad_dt(self, tiny_design):
        with pytest.raises(ValueError):
            DynamicNoiseAnalysis(tiny_design, dt=-1e-12)


class TestWorstCaseSummary:
    def test_summary_fields(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        results = analysis.run_many(tiny_traces[:4])
        summary = worst_case_summary(results)
        assert summary["num_vectors"] == 4
        assert summary["mean_worst_noise_mV"] > 0
        assert summary["max_worst_noise_mV"] >= summary["mean_worst_noise_mV"]
        assert 0.0 <= summary["hotspot_ratio"] <= 1.0
        assert summary["total_runtime_s"] >= summary["mean_runtime_s"]

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            worst_case_summary([])


class TestRunManyBatched:
    def test_matches_per_vector_run(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        batched = analysis.run_many(tiny_traces[:4])
        for trace, block in zip(tiny_traces, batched):
            single = analysis.run(trace)
            np.testing.assert_allclose(
                block.tile_noise, single.tile_noise, rtol=1e-12, atol=1e-16
            )
            np.testing.assert_array_equal(block.hotspot_map, single.hotspot_map)
            assert block.worst_noise == pytest.approx(single.worst_noise, rel=1e-12)

    def test_runtime_split_evenly(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        results = analysis.run_many(tiny_traces[:4])
        runtimes = {result.runtime_seconds for result in results}
        assert len(runtimes) == 1
        assert runtimes.pop() > 0

    def test_empty_batch(self, tiny_design):
        analysis = DynamicNoiseAnalysis(tiny_design, 1e-11)
        assert analysis.run_many([]) == []

    def test_batch_size_forwarded(self, tiny_design, tiny_traces):
        analysis = DynamicNoiseAnalysis(tiny_design, tiny_traces[0].dt)
        whole = analysis.run_many(tiny_traces[:4])
        chunked = analysis.run_many(tiny_traces[:4], batch_size=2)
        for a, b in zip(whole, chunked):
            np.testing.assert_allclose(a.tile_noise, b.tile_noise, rtol=1e-12, atol=1e-16)
