"""Tests for repro.sim.rom — the reduced-order strategy and its error gate."""

import numpy as np
import pytest

from repro.sim.rom import ReducedOrderStrategy, ROMOptions, ROMRunStats
from repro.sim.transient import (
    FullOrderStrategy,
    TransientEngine,
    TransientOptions,
)
from repro.workloads import generate_test_vectors
from repro.workloads.vectors import VectorConfig


def rom_options(**overrides) -> TransientOptions:
    base = {"solver_mode": "rom", "rom": ROMOptions(**overrides)}
    return TransientOptions(**base)


@pytest.fixture(scope="module")
def traces(tiny_design):
    return generate_test_vectors(
        tiny_design, 8, VectorConfig(num_steps=80, dt=1e-11), seed=11
    )


@pytest.fixture(scope="module")
def full_engine(tiny_design):
    return TransientEngine(tiny_design.mna, 1e-11, TransientOptions())


class TestROMOptions:
    def test_defaults_validate(self):
        options = ROMOptions()
        assert options.rank == 0 and options.tolerance == 0.08

    @pytest.mark.parametrize(
        "field, value",
        [
            ("order", 0),
            ("rank", -1),
            ("tolerance", 0.0),
            ("validate_vectors", -1),
            ("droop_floor", 0.0),
            ("reconstruct_dtype", "float16"),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            ROMOptions(**{field: value})

    def test_round_trips_through_dict(self):
        options = ROMOptions(order=4, rank=96, tolerance=0.05, reconstruct_dtype="float64")
        assert ROMOptions.from_dict(options.to_dict()) == options

    def test_rom_options_require_rom_mode(self):
        with pytest.raises(ValueError):
            TransientOptions(rom=ROMOptions())

    def test_rom_mode_autofills_default_options(self):
        options = TransientOptions(solver_mode="rom")
        assert options.rom == ROMOptions()


class TestStrategySelection:
    def test_full_mode_uses_full_order_strategy(self, full_engine):
        assert isinstance(full_engine.strategy, FullOrderStrategy)
        assert full_engine.rom_stats is None

    def test_rom_mode_uses_reduced_order_strategy(self, tiny_design):
        engine = TransientEngine(tiny_design.mna, 1e-11, rom_options())
        assert isinstance(engine.strategy, ReducedOrderStrategy)
        assert isinstance(engine.rom_stats, ROMRunStats)
        assert 1 <= engine.strategy.rank <= tiny_design.mna.num_nodes

    def test_explicit_rank_is_honoured(self, tiny_design):
        engine = TransientEngine(tiny_design.mna, 1e-11, rom_options(rank=48))
        assert engine.strategy.rank <= 48


class TestStaticSolverMethod:
    # Regression: the DC initial-condition solver must follow the
    # configured solver_method, not a hardcoded "direct".
    def test_static_solver_follows_options(self, tiny_design):
        direct = TransientEngine(tiny_design.mna, 1e-11, TransientOptions())
        cholesky = TransientEngine(
            tiny_design.mna, 1e-11, TransientOptions(solver_method="cholesky")
        )
        assert type(direct.full_order._static()).__name__ == "DirectSolver"
        assert type(cholesky.full_order._static()).__name__ == "CholeskySolver"


class TestGatedRunMany:
    def test_labels_match_full_order_on_tiny_design(self, tiny_design, full_engine, traces):
        # A tiny design's ROM basis spans nearly the whole space — labels
        # are close to exact, far inside the default gate tolerance.
        engine = TransientEngine(tiny_design.mna, 1e-11, rom_options())
        reference = full_engine.run_many(traces)
        results = engine.run_many(traces)
        for rom, full in zip(results, reference):
            assert rom.worst_droop == pytest.approx(full.worst_droop, rel=1e-2)
        assert engine.rom_stats.fallbacks == 0

    def test_validated_sample_returns_full_order_results(self, tiny_design, traces):
        engine = TransientEngine(tiny_design.mna, 1e-11, rom_options())
        results = engine.run_many(traces)
        # validate_vectors=2 spreads over the call: first and last trace.
        assert results[0].solver == "full"
        assert results[-1].solver == "full"
        assert all(result.solver == "rom" for result in results[1:-1])
        stats = engine.rom_stats
        assert stats.calls == 1
        assert stats.validated == 2
        assert stats.rom_vectors == len(traces) - 2
        assert stats.full_vectors == 2

    def test_gate_falls_back_wholesale_on_tolerance_miss(self, tiny_design, traces):
        # An absurdly tight tolerance turns the ROM's (tiny) error into a
        # gate miss: the whole call must come back full-order labelled.
        engine = TransientEngine(
            tiny_design.mna, 1e-11, rom_options(tolerance=1e-15)
        )
        results = engine.run_many(traces)
        assert all(result.solver == "full" for result in results)
        stats = engine.rom_stats
        assert stats.fallbacks == 1
        assert stats.full_vectors == len(traces)
        assert stats.rom_vectors == 0
        assert stats.max_rel_error > 1e-15

    def test_zero_validate_vectors_disables_gate(self, tiny_design, traces):
        engine = TransientEngine(
            tiny_design.mna, 1e-11, rom_options(validate_vectors=0)
        )
        results = engine.run_many(traces)
        assert all(result.solver == "rom" for result in results)
        assert engine.rom_stats.validated == 0

    def test_single_trace_run_is_ungated(self, tiny_design, traces):
        engine = TransientEngine(tiny_design.mna, 1e-11, rom_options())
        result = engine.run(traces[0])
        assert result.solver == "rom"
        assert engine.rom_stats.calls == 0

    def test_gated_run_is_deterministic(self, tiny_design, traces):
        first = TransientEngine(tiny_design.mna, 1e-11, rom_options()).run_many(traces)
        second = TransientEngine(tiny_design.mna, 1e-11, rom_options()).run_many(traces)
        for a, b in zip(first, second):
            assert a.solver == b.solver
            np.testing.assert_array_equal(a.max_droop_per_node, b.max_droop_per_node)
            assert a.worst_droop == b.worst_droop
            assert a.worst_time_index == b.worst_time_index


class TestValidationIndices:
    @pytest.fixture(scope="class")
    def engine(self, tiny_design):
        return TransientEngine(tiny_design.mna, 1e-11, rom_options(validate_vectors=3))

    def test_indices_are_spread_and_deterministic(self, engine):
        indices = engine._validation_indices(10)
        assert indices == engine._validation_indices(10)
        assert indices[0] == 0 and indices[-1] == 9
        assert len(indices) == 3

    def test_sample_never_exceeds_count(self, engine):
        assert engine._validation_indices(2) == [0, 1]
        assert engine._validation_indices(1) == [0]


class TestReducedIntegration:
    def test_trapezoidal_method_supported(self, tiny_design, traces):
        full = TransientEngine(
            tiny_design.mna, 1e-11, TransientOptions(method="trapezoidal")
        )
        rom = TransientEngine(
            tiny_design.mna,
            1e-11,
            TransientOptions(method="trapezoidal", solver_mode="rom"),
        )
        reference = full.run_many(traces)
        results = rom.run_many(traces)
        for ours, theirs in zip(results, reference):
            assert ours.worst_droop == pytest.approx(theirs.worst_droop, rel=1e-2)

    def test_waveform_reconstruction(self, tiny_design, traces):
        full = TransientEngine(
            tiny_design.mna, 1e-11, TransientOptions(store_waveform=True)
        )
        rom = TransientEngine(
            tiny_design.mna,
            1e-11,
            TransientOptions(store_waveform=True, solver_mode="rom"),
        )
        reference = full.run(traces[1])
        result = rom.run(traces[1])
        assert result.waveform is not None
        assert result.waveform.droops.shape == reference.waveform.droops.shape
        scale = float(np.max(np.abs(reference.waveform.droops)))
        error = float(np.max(np.abs(result.waveform.droops - reference.waveform.droops)))
        assert error <= 0.02 * scale

    def test_float64_reconstruction_available(self, tiny_design, traces):
        f32 = TransientEngine(tiny_design.mna, 1e-11, rom_options(validate_vectors=0))
        f64 = TransientEngine(
            tiny_design.mna,
            1e-11,
            rom_options(validate_vectors=0, reconstruct_dtype="float64"),
        )
        a = f32.run_many(traces)[1]
        b = f64.run_many(traces)[1]
        # Same subspace, different reconstruction precision: results agree
        # to single-precision rounding of the droop magnitudes.
        assert a.worst_droop == pytest.approx(b.worst_droop, rel=1e-5)

    def test_final_droop_matches_full_order(self, tiny_design, full_engine, traces):
        rom = TransientEngine(tiny_design.mna, 1e-11, rom_options(validate_vectors=0))
        reference = full_engine.run_many(traces)
        results = rom.run_many(traces)
        scale = max(float(np.max(np.abs(r.final_droop))) for r in reference)
        for ours, theirs in zip(results, reference):
            assert float(np.max(np.abs(ours.final_droop - theirs.final_droop))) <= 0.02 * scale
