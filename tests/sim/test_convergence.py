"""Temporal convergence order of the transient integrators.

An analytic reference pins the accuracy claims the engine's docstrings make:
backward Euler is first order, the trapezoidal rule second order.  The test
circuit is the smallest MNA system with dynamics — one node with a
conductance ``g`` and a capacitance ``c`` to the reference, driven by the
(non-negative) raised-cosine load current ``i(t) = a (1 - cos w t)`` — whose
droop solves

    c v'(t) + g v(t) = a (1 - cos w t),   v(0) = 0

in closed form.  Starting from rest at ``i(0) = 0`` both schemes start from
*exact* initial data (``v(0) = 0`` and ``v'(0) = 0``), so the observed error
slope is the scheme's global order, uncontaminated by start-up error.

The grid refinement halves ``dt`` at fixed final time and measures the
worst-case waveform error against the analytic droop; the observed order
``log2(err(dt) / err(dt/2))`` must straddle 1 for backward Euler and 2 for
the trapezoidal rule.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.pdn.stamps import MNASystem
from repro.sim.transient import TransientEngine, TransientOptions
from repro.sim.waveform import CurrentTrace

#: RC circuit and drive: time constant c/g = 1, forcing period comparable to
#: it, final time long enough to cover the decaying homogeneous term.
G = 1.0
C = 1.0
AMPLITUDE = 1.0
OMEGA = 2.0 * np.pi * 0.5
T_FINAL = 2.0

#: Coarsest step: 100 steps over T_FINAL resolves the forcing period well
#: (the asymptotic regime, where the order is clean).
DT0 = 0.02
REFINEMENTS = 3


def rc_system() -> MNASystem:
    """One node, conductance and capacitance to reference, one load port."""
    empty = np.empty(0, dtype=int)
    return MNASystem(
        num_nodes=1,
        num_die_nodes=1,
        conductance=sp.csc_matrix(np.array([[G]])),
        cap_diag=np.array([C]),
        ind_a=empty,
        ind_b=empty,
        ind_value=np.empty(0),
        load_nodes=np.array([0]),
        bump_die_nodes=empty,
        bump_pkg_nodes=empty,
    )


def drive(t: np.ndarray) -> np.ndarray:
    """Raised-cosine load current: non-negative, zero value/slope at t=0."""
    return AMPLITUDE * (1.0 - np.cos(OMEGA * t))


def analytic_droop(t: np.ndarray) -> np.ndarray:
    """Exact droop of the driven RC node, started from rest."""
    wc = OMEGA * C
    denominator = G**2 + wc**2
    steady = AMPLITUDE / G
    forced = -AMPLITUDE * (G * np.cos(OMEGA * t) + wc * np.sin(OMEGA * t)) / denominator
    homogeneous = (AMPLITUDE * G / denominator - steady) * np.exp(-G * t / C)
    return steady + forced + homogeneous


def waveform_error(method: str, dt: float) -> float:
    """Worst-case waveform error vs the analytic droop at step ``dt``."""
    mna = rc_system()
    num_steps = round(T_FINAL / dt) + 1
    t = np.arange(num_steps) * dt
    currents = drive(t)[:, np.newaxis]
    engine = TransientEngine(
        mna, dt, TransientOptions(method=method, store_waveform=True)
    )
    result = engine.run(CurrentTrace(currents, dt))
    return float(np.max(np.abs(result.waveform.droops[:, 0] - analytic_droop(t))))


def observed_orders(method: str) -> list[float]:
    """Error-slope estimates across successive dt halvings."""
    errors = [waveform_error(method, DT0 / 2**k) for k in range(REFINEMENTS)]
    assert all(later < earlier for earlier, later in zip(errors, errors[1:])), (
        f"{method} error must decrease under refinement, got {errors}"
    )
    return [float(np.log2(a / b)) for a, b in zip(errors, errors[1:])]


class TestConvergenceOrder:
    def test_backward_euler_is_first_order(self):
        for order in observed_orders("backward_euler"):
            assert 0.8 < order < 1.2, f"backward Euler slope {order:.3f} is not ~1"

    def test_trapezoidal_is_second_order(self):
        for order in observed_orders("trapezoidal"):
            assert 1.8 < order < 2.2, f"trapezoidal slope {order:.3f} is not ~2"

    def test_trapezoidal_beats_backward_euler(self):
        # At the same (resolved) step the second-order scheme is strictly
        # more accurate — the reason it exists as the validation method.
        dt = DT0 / 2
        assert waveform_error("trapezoidal", dt) < waveform_error("backward_euler", dt) / 10
