"""Tests for repro.sim.waveform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.waveform import CurrentTrace, VoltageWaveform, per_tile_maximum


class TestCurrentTrace:
    def test_basic_properties(self):
        trace = CurrentTrace(np.ones((10, 3)), dt=1e-12, name="t")
        assert trace.num_steps == 10
        assert trace.num_loads == 3
        assert trace.duration == pytest.approx(1e-11)
        assert trace.times.shape == (10,)

    def test_total_current(self):
        currents = np.arange(12, dtype=float).reshape(4, 3)
        trace = CurrentTrace(currents, 1e-12)
        np.testing.assert_allclose(trace.total_current(), currents.sum(axis=1))

    def test_subset(self):
        trace = CurrentTrace(np.arange(20, dtype=float).reshape(10, 2), 1e-12)
        subset = trace.subset(np.array([0, 5, 9]))
        assert subset.num_steps == 3
        np.testing.assert_allclose(subset.currents[1], trace.currents[5])

    def test_subset_rejects_out_of_range(self):
        trace = CurrentTrace(np.ones((5, 2)), 1e-12)
        with pytest.raises(ValueError):
            trace.subset(np.array([7]))
        with pytest.raises(ValueError):
            trace.subset(np.array([], dtype=int))

    def test_scaled(self):
        trace = CurrentTrace(np.ones((5, 2)), 1e-12)
        assert trace.scaled(2.0).currents.max() == pytest.approx(2.0)

    def test_rejects_negative_currents(self):
        with pytest.raises(ValueError):
            CurrentTrace(-np.ones((5, 2)), 1e-12)

    def test_rejects_nan(self):
        currents = np.ones((5, 2))
        currents[0, 0] = np.nan
        with pytest.raises(ValueError):
            CurrentTrace(currents, 1e-12)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            CurrentTrace(np.ones(5), 1e-12)


class TestVoltageWaveform:
    def test_worst_case_reductions(self):
        droops = np.array([[0.1, 0.2], [0.3, 0.1]])
        waveform = VoltageWaveform(droops, 1e-12)
        np.testing.assert_allclose(waveform.worst_case_per_node(), [0.3, 0.2])
        assert waveform.worst_case() == pytest.approx(0.3)
        np.testing.assert_allclose(waveform.node_waveform(1), [0.2, 0.1])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VoltageWaveform(np.ones(5), 1e-12)


class TestPerTileMaximum:
    def test_basic(self):
        values = np.array([1.0, 5.0, 2.0, 0.5])
        tiles = np.array([0, 0, 1, 1])
        np.testing.assert_allclose(per_tile_maximum(values, tiles, 3), [5.0, 2.0, 0.0])

    def test_empty_tiles_are_zero(self):
        out = per_tile_maximum(np.array([1.0]), np.array([2]), 4)
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_tile_maximum(np.ones(3), np.zeros(4, dtype=int), 2)

    @given(seed=st.integers(0, 200), num_values=st.integers(1, 100), num_tiles=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_max_decomposition_equals_global_max(self, seed, num_values, num_tiles):
        # Eq. 2 of the paper: max over tiles of per-tile maxima == global max.
        generator = np.random.default_rng(seed)
        values = generator.random(num_values)
        tiles = generator.integers(0, num_tiles, num_values)
        per_tile = per_tile_maximum(values, tiles, num_tiles)
        assert per_tile.max() == pytest.approx(values.max())
