"""Tests for repro.sim.transient."""

import numpy as np
import pytest

from repro.sim.static_ir import StaticIRAnalysis
from repro.sim.transient import TransientEngine, TransientOptions
from repro.sim.waveform import CurrentTrace


def _constant_trace(design, level: float, steps: int, dt: float) -> CurrentTrace:
    currents = np.tile(level * design.loads.nominal_currents, (steps, 1))
    return CurrentTrace(currents, dt)


def _step_trace(design, steps: int, dt: float, step_at: int) -> CurrentTrace:
    currents = np.zeros((steps, design.num_loads))
    currents[step_at:] = design.loads.nominal_currents
    return CurrentTrace(currents, dt)


class TestTransientOptions:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            TransientOptions(method="forward_euler")

    def test_rejects_unknown_initial_state(self):
        with pytest.raises(ValueError):
            TransientOptions(initial_state="warm")


class TestTransientEngine:
    def test_constant_current_stays_at_dc(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(tiny_design.mna, dt, TransientOptions(initial_state="dc"))
        trace = _constant_trace(tiny_design, 1.0, 40, dt)
        result = engine.run(trace)
        static = StaticIRAnalysis(tiny_design.mna).solve(tiny_design.loads.nominal_currents)
        # With DC initial conditions and constant excitation nothing moves.
        np.testing.assert_allclose(result.final_droop, static, rtol=1e-3, atol=1e-5)
        assert result.worst_droop == pytest.approx(static.max(), rel=1e-3)

    def test_step_overshoots_dc_level(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(
            tiny_design.mna, dt, TransientOptions(initial_state="zero", store_waveform=True)
        )
        result = engine.run(_step_trace(tiny_design, 300, dt, step_at=30))
        static = StaticIRAnalysis(tiny_design.mna).solve(tiny_design.loads.nominal_currents)
        # Dynamic first droop exceeds the static level (package resonance).
        assert result.worst_droop > 1.2 * static.max()

    def test_waveform_stored_when_requested(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(tiny_design.mna, dt, TransientOptions(store_waveform=True))
        result = engine.run(_constant_trace(tiny_design, 0.5, 20, dt))
        assert result.waveform is not None
        assert result.waveform.num_steps == 20
        assert result.waveform.num_nodes == tiny_design.mna.num_nodes

    def test_waveform_omitted_by_default(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(tiny_design.mna, dt)
        result = engine.run(_constant_trace(tiny_design, 0.5, 10, dt))
        assert result.waveform is None

    def test_max_droop_matches_stored_waveform(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(
            tiny_design.mna, dt, TransientOptions(initial_state="zero", store_waveform=True)
        )
        result = engine.run(_step_trace(tiny_design, 120, dt, step_at=20))
        np.testing.assert_allclose(
            result.max_droop_per_node, result.waveform.droops.max(axis=0), rtol=1e-12
        )

    def test_trapezoidal_close_to_backward_euler(self, tiny_design):
        dt = 5e-12
        trace = _step_trace(tiny_design, 200, dt, step_at=20)
        backward = TransientEngine(
            tiny_design.mna, dt, TransientOptions(method="backward_euler", initial_state="zero")
        ).run(trace)
        trapezoid = TransientEngine(
            tiny_design.mna, dt, TransientOptions(method="trapezoidal", initial_state="zero")
        ).run(trace)
        assert trapezoid.worst_droop == pytest.approx(backward.worst_droop, rel=0.15)

    def test_backward_euler_converges_with_dt(self, tiny_design):
        # Halving dt should change the worst droop only moderately (first-order
        # convergence); a blow-up would indicate an unstable companion model.
        coarse_dt, fine_dt = 2e-11, 1e-11
        steps = 150
        coarse = TransientEngine(
            tiny_design.mna, coarse_dt, TransientOptions(initial_state="zero")
        ).run(_step_trace(tiny_design, steps, coarse_dt, 20))
        fine = TransientEngine(
            tiny_design.mna, fine_dt, TransientOptions(initial_state="zero")
        ).run(_step_trace(tiny_design, 2 * steps, fine_dt, 40))
        assert fine.worst_droop == pytest.approx(coarse.worst_droop, rel=0.25)

    def test_dt_mismatch_rejected(self, tiny_design):
        engine = TransientEngine(tiny_design.mna, 1e-11)
        with pytest.raises(ValueError):
            engine.run(_constant_trace(tiny_design, 1.0, 10, 2e-11))

    def test_load_count_mismatch_rejected(self, tiny_design):
        engine = TransientEngine(tiny_design.mna, 1e-11)
        with pytest.raises(ValueError):
            engine.run(CurrentTrace(np.ones((10, 3)), 1e-11))

    def test_zero_initial_state_starts_at_rest(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(
            tiny_design.mna, dt, TransientOptions(initial_state="zero", store_waveform=True)
        )
        result = engine.run(_step_trace(tiny_design, 30, dt, step_at=10))
        np.testing.assert_allclose(result.waveform.droops[0], 0.0, atol=1e-15)

    def test_worst_time_index_in_range(self, tiny_design):
        dt = 1e-11
        engine = TransientEngine(tiny_design.mna, dt, TransientOptions(initial_state="zero"))
        result = engine.run(_step_trace(tiny_design, 100, dt, step_at=50))
        assert 0 <= result.worst_time_index < 100
        # The worst droop happens after the current step is applied.
        assert result.worst_time_index >= 50


class TestRunMany:
    """Lockstep block integration (the dataset factory's hot path)."""

    @pytest.mark.parametrize(
        "options",
        [
            TransientOptions(),
            TransientOptions(method="trapezoidal"),
            TransientOptions(initial_state="zero"),
            TransientOptions(store_waveform=True),
        ],
        ids=["backward_euler", "trapezoidal", "zero_init", "waveform"],
    )
    def test_matches_per_trace_run(self, tiny_design, tiny_traces, options):
        engine = TransientEngine(tiny_design.mna, tiny_traces[0].dt, options)
        traces = tiny_traces[:5]
        batched = engine.run_many(traces)
        for trace, block in zip(traces, batched):
            single = engine.run(trace)
            np.testing.assert_allclose(
                block.max_droop_per_node, single.max_droop_per_node,
                rtol=1e-12, atol=1e-16,
            )
            np.testing.assert_allclose(
                block.final_droop, single.final_droop, rtol=1e-12, atol=1e-16
            )
            assert block.worst_droop == pytest.approx(single.worst_droop, rel=1e-12)
            assert block.num_steps == single.num_steps
            if options.store_waveform:
                np.testing.assert_allclose(
                    block.waveform.droops, single.waveform.droops,
                    rtol=1e-12, atol=1e-16,
                )

    def test_deterministic_for_fixed_batch(self, tiny_design, tiny_traces):
        engine = TransientEngine(tiny_design.mna, tiny_traces[0].dt)
        first = engine.run_many(tiny_traces[:4])
        second = engine.run_many(tiny_traces[:4])
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.max_droop_per_node, b.max_droop_per_node)
            assert a.worst_droop == b.worst_droop
            assert a.worst_time_index == b.worst_time_index

    def test_batch_size_chunks_preserve_order(self, tiny_design, tiny_traces):
        engine = TransientEngine(tiny_design.mna, tiny_traces[0].dt)
        whole = engine.run_many(tiny_traces[:5])
        chunked = engine.run_many(tiny_traces[:5], batch_size=2)
        for a, b in zip(whole, chunked):
            np.testing.assert_allclose(
                a.max_droop_per_node, b.max_droop_per_node, rtol=1e-12, atol=1e-16
            )

    def test_mixed_lengths_grouped(self, tiny_design, tiny_traces):
        dt = tiny_traces[0].dt
        engine = TransientEngine(tiny_design.mna, dt)
        short = tiny_traces[0].subset(np.arange(30))
        mixed = [tiny_traces[1], short, tiny_traces[2]]
        results = engine.run_many(mixed)
        assert [r.num_steps for r in results] == [t.num_steps for t in mixed]
        single = engine.run(short)
        np.testing.assert_allclose(
            results[1].max_droop_per_node, single.max_droop_per_node,
            rtol=1e-12, atol=1e-16,
        )

    def test_empty_batch(self, tiny_design):
        engine = TransientEngine(tiny_design.mna, 1e-11)
        assert engine.run_many([]) == []

    def test_rejects_bad_batch_size(self, tiny_design, tiny_traces):
        engine = TransientEngine(tiny_design.mna, tiny_traces[0].dt)
        with pytest.raises(ValueError):
            engine.run_many(tiny_traces[:2], batch_size=0)

    def test_validates_every_trace_up_front(self, tiny_design, tiny_traces):
        engine = TransientEngine(tiny_design.mna, tiny_traces[0].dt)
        bad = CurrentTrace(np.ones((10, 3)), tiny_traces[0].dt)
        with pytest.raises(ValueError):
            engine.run_many([tiny_traces[0], bad])
