"""Tests for repro.sim.multigrid."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sim.linear import ConjugateGradientSolver
from repro.sim.multigrid import MultigridSolver


def _grid_matrix(design):
    return design.mna.static_conductance()


class TestMultigridSolver:
    def test_solves_power_grid_system(self, tiny_design):
        matrix = _grid_matrix(tiny_design)
        rhs = tiny_design.mna.load_vector(tiny_design.loads.nominal_currents)
        reference = sp.linalg.spsolve(matrix, rhs)
        solver = MultigridSolver(matrix, tolerance=1e-10)
        solution = solver.solve(rhs)
        np.testing.assert_allclose(solution, reference, rtol=1e-5, atol=1e-9)

    def test_builds_multiple_levels(self, tiny_design):
        solver = MultigridSolver(_grid_matrix(tiny_design), coarse_size=50)
        assert solver.num_levels >= 2

    def test_zero_rhs_returns_zero(self, tiny_design):
        solver = MultigridSolver(_grid_matrix(tiny_design))
        matrix_size = solver.size
        np.testing.assert_allclose(solver.solve(np.zeros(matrix_size)), 0.0)
        assert solver.cycles_used == 0

    def test_converges_in_few_cycles(self, tiny_design):
        matrix = _grid_matrix(tiny_design)
        rhs = tiny_design.mna.load_vector(tiny_design.loads.nominal_currents)
        solver = MultigridSolver(matrix, tolerance=1e-8)
        solver.solve(rhs)
        assert solver.cycles_used < 60

    def test_as_cg_preconditioner(self, tiny_design):
        matrix = _grid_matrix(tiny_design)
        rhs = tiny_design.mna.load_vector(tiny_design.loads.nominal_currents)
        reference = sp.linalg.spsolve(matrix, rhs)
        amg = MultigridSolver(matrix)
        cg = ConjugateGradientSolver(matrix, preconditioner=amg.as_preconditioner(), tolerance=1e-12)
        solution = cg.solve(rhs)
        np.testing.assert_allclose(solution, reference, rtol=1e-6, atol=1e-10)

    def test_rejects_bad_omega(self, tiny_design):
        with pytest.raises(ValueError):
            MultigridSolver(_grid_matrix(tiny_design), omega=1.5)

    def test_small_matrix_degenerates_to_direct(self):
        matrix = sp.csc_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        solver = MultigridSolver(matrix, coarse_size=10)
        rhs = np.array([1.0, 0.0])
        np.testing.assert_allclose(solver.solve(rhs), np.linalg.solve(matrix.toarray(), rhs))
