"""Tests for repro.sim.linear (sparse solver back-ends)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sim.linear import (
    CholeskySolver,
    ConjugateGradientSolver,
    DirectSolver,
    make_solver,
    solver_names,
)


def _laplacian_2d(side: int) -> sp.csc_matrix:
    """A grounded 2-D Laplacian — the canonical power-grid-like SPD matrix."""
    main = 4.0 * np.ones(side * side)
    matrix = sp.diags(
        [main, -np.ones(side * side - 1), -np.ones(side * side - 1),
         -np.ones(side * side - side), -np.ones(side * side - side)],
        [0, 1, -1, side, -side],
        format="lil",
    )
    # Remove the wrap-around couplings of the 1-offset diagonals.
    for row in range(side, side * side, side):
        matrix[row, row - 1] = 0.0
        matrix[row - 1, row] = 0.0
    return sp.csc_matrix(matrix)


@pytest.fixture(scope="module")
def spd_system():
    matrix = _laplacian_2d(12)
    rng = np.random.default_rng(0)
    rhs = rng.random(matrix.shape[0])
    reference = sp.linalg.spsolve(matrix, rhs)
    return matrix, rhs, reference


class TestDirectSolver:
    def test_matches_reference(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = DirectSolver(matrix)
        np.testing.assert_allclose(solver.solve(rhs), reference, rtol=1e-10)

    def test_solve_many(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = DirectSolver(matrix)
        stacked = np.column_stack([rhs, 2 * rhs])
        solutions = solver.solve_many(stacked)
        np.testing.assert_allclose(solutions[:, 0], reference, rtol=1e-10)
        np.testing.assert_allclose(solutions[:, 1], 2 * reference, rtol=1e-10)

    def test_residual_norm_small(self, spd_system):
        matrix, rhs, _ = spd_system
        solver = DirectSolver(matrix)
        assert solver.residual_norm(solver.solve(rhs), rhs) < 1e-12

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DirectSolver(sp.csc_matrix(np.ones((2, 3))))

    def test_rejects_nan_rhs(self, spd_system):
        matrix, rhs, _ = spd_system
        solver = DirectSolver(matrix)
        bad = rhs.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError):
            solver.solve(bad)


class TestCholeskySolver:
    def test_matches_reference(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = CholeskySolver(matrix)
        np.testing.assert_allclose(solver.solve(rhs), reference, rtol=1e-8)


class TestConjugateGradientSolver:
    def test_matches_reference_with_jacobi(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = ConjugateGradientSolver(matrix, tolerance=1e-12)
        np.testing.assert_allclose(solver.solve(rhs), reference, rtol=1e-6, atol=1e-10)
        assert solver.stats.converged
        assert solver.stats.iterations > 0

    def test_no_preconditioner(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = ConjugateGradientSolver(matrix, preconditioner="none", tolerance=1e-12)
        np.testing.assert_allclose(solver.solve(rhs), reference, rtol=1e-6, atol=1e-10)

    def test_callable_preconditioner(self, spd_system):
        matrix, rhs, reference = spd_system
        inverse_diag = 1.0 / matrix.diagonal()
        solver = ConjugateGradientSolver(
            matrix, preconditioner=lambda v: inverse_diag * v, tolerance=1e-12
        )
        np.testing.assert_allclose(solver.solve(rhs), reference, rtol=1e-6, atol=1e-10)

    def test_unknown_preconditioner(self, spd_system):
        matrix, _, _ = spd_system
        with pytest.raises(ValueError):
            ConjugateGradientSolver(matrix, preconditioner="ilu0")

    def test_zero_rhs(self, spd_system):
        matrix, _, _ = spd_system
        solver = ConjugateGradientSolver(matrix)
        np.testing.assert_allclose(solver.solve(np.zeros(matrix.shape[0])), 0.0)


class TestBlockSolve:
    """Regression: direct factorised solvers solve RHS blocks in one call.

    ``solve_many`` used to fall back to a per-column Python loop; these
    tests pin the block path's contract — one back-substitution call whose
    columns agree with per-column ``solve`` to solver rounding, and
    deterministic results for a given block.
    """

    @pytest.mark.parametrize("solver_class", [DirectSolver, CholeskySolver])
    def test_block_matches_per_column(self, spd_system, solver_class):
        matrix, rhs, _ = spd_system
        solver = solver_class(matrix)
        rng = np.random.default_rng(7)
        block = rng.random((matrix.shape[0], 9))
        block[:, 0] = rhs
        stacked = solver.solve_many(block)
        for j in range(block.shape[1]):
            np.testing.assert_allclose(
                stacked[:, j], solver.solve(block[:, j]), rtol=1e-13, atol=1e-16
            )

    @pytest.mark.parametrize("solver_class", [DirectSolver, CholeskySolver])
    def test_block_is_deterministic(self, spd_system, solver_class):
        matrix, _, _ = spd_system
        solver = solver_class(matrix)
        block = np.random.default_rng(8).random((matrix.shape[0], 5))
        first = solver.solve_many(block)
        np.testing.assert_array_equal(first, solver.solve_many(block))

    def test_single_call_back_substitution(self, spd_system):
        """The whole block goes through SuperLU once — never a column loop."""
        matrix, _, _ = spd_system
        solver = DirectSolver(matrix)
        calls = []
        real_lu = solver._lu

        class CountingLU:
            def solve(self, rhs_block):
                calls.append(np.asarray(rhs_block).shape)
                return real_lu.solve(rhs_block)

        solver._lu = CountingLU()
        block = np.random.default_rng(9).random((matrix.shape[0], 6))
        solver.solve_many(block)
        assert calls == [(matrix.shape[0], 6)]

    def test_iterative_fallback_loops_per_column(self, spd_system):
        matrix, rhs, reference = spd_system
        solver = ConjugateGradientSolver(matrix, tolerance=1e-12)
        block = np.column_stack([rhs, 3.0 * rhs])
        stacked = solver.solve_many(block)
        np.testing.assert_allclose(stacked[:, 0], reference, rtol=1e-6, atol=1e-10)
        np.testing.assert_allclose(stacked[:, 1], 3.0 * reference, rtol=1e-6, atol=1e-10)

    def test_empty_block(self, spd_system):
        matrix, _, _ = spd_system
        solver = DirectSolver(matrix)
        result = solver.solve_many(np.empty((matrix.shape[0], 0)))
        assert result.shape == (matrix.shape[0], 0)

    def test_rejects_wrong_height(self, spd_system):
        matrix, _, _ = spd_system
        solver = DirectSolver(matrix)
        with pytest.raises(ValueError):
            solver.solve_many(np.ones((matrix.shape[0] + 1, 2)))

    def test_rejects_nan_block(self, spd_system):
        matrix, _, _ = spd_system
        solver = DirectSolver(matrix)
        block = np.ones((matrix.shape[0], 2))
        block[3, 1] = np.nan
        with pytest.raises(ValueError):
            solver.solve_many(block)


class TestMakeSolver:
    @pytest.mark.parametrize("method", ["direct", "cholesky", "cg", "multigrid"])
    def test_all_methods_solve(self, spd_system, method):
        matrix, rhs, reference = spd_system
        solver = make_solver(matrix, method)
        solution = solver.solve(rhs)
        np.testing.assert_allclose(solution, reference, rtol=1e-5, atol=1e-8)

    def test_unknown_method(self, spd_system):
        with pytest.raises(ValueError):
            make_solver(spd_system[0], "gaussian-elimination")

    def test_solver_names_contains_all(self):
        names = solver_names()
        assert set(names) >= {"direct", "cholesky", "cg", "multigrid"}
