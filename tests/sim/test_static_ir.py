"""Tests for repro.sim.static_ir."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sim.static_ir import StaticIRAnalysis, run_static_analysis


class TestStaticIRAnalysis:
    def test_matches_direct_sparse_solve(self, tiny_design):
        analysis = StaticIRAnalysis(tiny_design.mna)
        currents = tiny_design.loads.nominal_currents
        droop = analysis.solve(currents)
        reference = sp.linalg.spsolve(
            tiny_design.mna.static_conductance(), tiny_design.mna.load_vector(currents)
        )
        np.testing.assert_allclose(droop, reference, rtol=1e-8)

    def test_linearity(self, tiny_design):
        analysis = StaticIRAnalysis(tiny_design.mna)
        currents = tiny_design.loads.nominal_currents
        np.testing.assert_allclose(
            analysis.solve(2.0 * currents), 2.0 * analysis.solve(currents), rtol=1e-9
        )

    def test_droop_positive_under_positive_load(self, tiny_design):
        analysis = StaticIRAnalysis(tiny_design.mna)
        droop = analysis.solve(tiny_design.loads.nominal_currents)
        assert droop.min() >= -1e-12

    def test_zero_current_zero_droop(self, tiny_design):
        analysis = StaticIRAnalysis(tiny_design.mna)
        droop = analysis.solve(np.zeros(tiny_design.num_loads))
        np.testing.assert_allclose(droop, 0.0, atol=1e-15)

    def test_cg_solver_agrees_with_direct(self, tiny_design):
        direct = StaticIRAnalysis(tiny_design.mna, solver_method="direct")
        cg = StaticIRAnalysis(tiny_design.mna, solver_method="cg", tolerance=1e-12)
        currents = tiny_design.loads.nominal_currents
        np.testing.assert_allclose(cg.solve(currents), direct.solve(currents), rtol=1e-5, atol=1e-9)

    def test_rejects_nan_currents(self, tiny_design):
        analysis = StaticIRAnalysis(tiny_design.mna)
        bad = tiny_design.loads.nominal_currents.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError):
            analysis.solve(bad)


class TestRunStaticAnalysis:
    def test_returns_tile_map(self, tiny_design):
        result = run_static_analysis(tiny_design)
        assert result.tile_map.shape == tiny_design.tile_grid.shape
        assert result.worst_case >= result.mean_droop
        assert result.worst_case > 0

    def test_tile_map_maxima_consistent_with_nodes(self, tiny_design):
        result = run_static_analysis(tiny_design)
        die_droop = result.node_droop[: tiny_design.mna.num_die_nodes]
        assert result.tile_map.max() == pytest.approx(die_droop.max())

    def test_custom_currents(self, tiny_design):
        low = run_static_analysis(tiny_design, 0.1 * tiny_design.loads.nominal_currents)
        high = run_static_analysis(tiny_design, tiny_design.loads.nominal_currents)
        assert high.worst_case > low.worst_case

    def test_loads_near_bumps_droop_less_than_far_loads(self, tiny_design):
        # Sanity check of the physics behind the distance feature: the tile
        # containing a bump should droop no more than the worst tile.
        result = run_static_analysis(tiny_design)
        bump_xy = tiny_design.grid.bump_xy
        rows, cols = tiny_design.tile_grid.tile_of(bump_xy[:, 0], bump_xy[:, 1])
        bump_tile_droop = result.tile_map[rows, cols].mean()
        assert bump_tile_droop <= result.tile_map.max()
