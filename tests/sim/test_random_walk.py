"""Tests for repro.sim.random_walk."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sim.random_walk import RandomWalkSolver


def _small_resistive_network():
    """A 1-D chain of 5 nodes with both ends grounded through resistors."""
    size = 5
    g = 1.0
    matrix = sp.lil_matrix((size, size))
    for i in range(size - 1):
        matrix[i, i] += g
        matrix[i + 1, i + 1] += g
        matrix[i, i + 1] -= g
        matrix[i + 1, i] -= g
    # Grounded branches at both ends.
    matrix[0, 0] += g
    matrix[size - 1, size - 1] += g
    return sp.csc_matrix(matrix)


class TestRandomWalkSolver:
    def test_estimate_matches_direct_solution(self):
        matrix = _small_resistive_network()
        rhs = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        reference = sp.linalg.spsolve(matrix, rhs)
        solver = RandomWalkSolver(matrix, rhs)
        estimate = solver.estimate_node(2, num_walks=4000, seed=0)
        assert estimate.mean == pytest.approx(reference[2], rel=0.1)

    def test_confidence_interval_contains_truth(self):
        matrix = _small_resistive_network()
        rhs = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        reference = sp.linalg.spsolve(matrix, rhs)
        solver = RandomWalkSolver(matrix, rhs)
        estimate = solver.estimate_node(1, num_walks=5000, seed=1)
        low, high = estimate.confidence_interval(z=3.0)
        assert low <= reference[1] <= high

    def test_estimate_nodes_multiple(self):
        matrix = _small_resistive_network()
        rhs = np.ones(5)
        solver = RandomWalkSolver(matrix, rhs)
        estimates = solver.estimate_nodes(np.array([0, 4]), num_walks=500, seed=2)
        assert len(estimates) == 2
        assert estimates[0].num_walks == 500

    def test_on_power_grid_node(self, tiny_design):
        matrix = tiny_design.mna.static_conductance()
        rhs = tiny_design.mna.load_vector(tiny_design.loads.nominal_currents)
        reference = sp.linalg.spsolve(matrix, rhs)
        node = int(tiny_design.mna.load_nodes[0])
        solver = RandomWalkSolver(matrix, rhs)
        estimate = solver.estimate_node(node, num_walks=1500, seed=3)
        # Monte-Carlo estimate: allow a generous tolerance.
        assert estimate.mean == pytest.approx(reference[node], rel=0.25, abs=2e-3)

    def test_rejects_invalid_node(self):
        matrix = _small_resistive_network()
        solver = RandomWalkSolver(matrix, np.ones(5))
        with pytest.raises(ValueError):
            solver.estimate_node(99)

    def test_rejects_wrong_rhs_length(self):
        matrix = _small_resistive_network()
        with pytest.raises(ValueError):
            RandomWalkSolver(matrix, np.ones(3))

    def test_rejects_positive_offdiagonal(self):
        bad = sp.csc_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            RandomWalkSolver(bad, np.ones(2))
