"""Tests for repro.baselines.tile_features."""

import numpy as np
import pytest

from repro.baselines.tile_features import TileGBTBaseline, TileRidgeBaseline, tile_feature_matrix
from repro.core.metrics import evaluate_predictions


class TestTileFeatureMatrix:
    def test_shape_and_finiteness(self, tiny_dataset):
        matrix = tile_feature_matrix(tiny_dataset, 0)
        num_tiles = tiny_dataset.tile_shape[0] * tiny_dataset.tile_shape[1]
        assert matrix.shape == (num_tiles, 10)
        assert np.all(np.isfinite(matrix))

    def test_distance_columns_constant_across_samples(self, tiny_dataset):
        a = tile_feature_matrix(tiny_dataset, 0)
        b = tile_feature_matrix(tiny_dataset, 1)
        # Columns 5 and 6 are distance features; they depend only on the design.
        np.testing.assert_allclose(a[:, 5:7], b[:, 5:7])


class TestTileRidgeBaseline:
    def test_fit_predict_shapes(self, tiny_dataset, tiny_split):
        baseline = TileRidgeBaseline().fit(tiny_dataset, tiny_split)
        prediction, runtime = baseline.predict_sample(tiny_dataset, int(tiny_split.test[0]))
        assert prediction.shape == tiny_dataset.tile_shape
        assert runtime > 0

    def test_beats_trivial_zero_predictor(self, tiny_dataset, tiny_split):
        baseline = TileRidgeBaseline().fit(tiny_dataset, tiny_split)
        maps, _ = baseline.predict_many(tiny_dataset, tiny_split.test)
        truth = np.stack([tiny_dataset.samples[i].target for i in tiny_split.test])
        ridge_error = np.mean(np.abs(maps - truth))
        zero_error = np.mean(np.abs(truth))
        assert ridge_error < zero_error

    def test_predict_before_fit_rejected(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            TileRidgeBaseline().predict_sample(tiny_dataset, 0)


class TestTileGBTBaseline:
    def test_fit_predict_and_accuracy(self, tiny_dataset, tiny_split):
        baseline = TileGBTBaseline(num_trees=20, max_depth=3, seed=0).fit(tiny_dataset, tiny_split)
        maps, runtimes = baseline.predict_many(tiny_dataset, tiny_split.test)
        truth = np.stack([tiny_dataset.samples[i].target for i in tiny_split.test])
        report = evaluate_predictions(maps, truth, tiny_dataset.hotspot_threshold)
        # The GBT baseline should be clearly better than predicting the mean.
        mean_map = np.full_like(truth, truth.mean())
        trivial = evaluate_predictions(mean_map, truth, tiny_dataset.hotspot_threshold)
        assert report.mean_ae < trivial.mean_ae
        assert runtimes.shape == (len(tiny_split.test),)
