"""Tests for repro.baselines.powernet."""

import numpy as np
import pytest

from repro.baselines.powernet import PowerNetBaseline, PowerNetConfig, PowerNetModel, _time_decompose
from repro.nn import Tensor


@pytest.fixture(scope="module")
def small_config():
    return PowerNetConfig(
        window_size=5,
        num_time_maps=4,
        channels=(4, 4),
        hidden_units=8,
        epochs=2,
        tiles_per_vector=8,
        learning_rate=2e-3,
        seed=0,
    )


class TestPowerNetConfig:
    def test_defaults_valid(self):
        config = PowerNetConfig()
        assert config.window_size == 15

    def test_rejects_even_window(self):
        with pytest.raises(ValueError):
            PowerNetConfig(window_size=8)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            PowerNetConfig(num_time_maps=0)
        with pytest.raises(ValueError):
            PowerNetConfig(epochs=0)


class TestTimeDecompose:
    def test_number_of_frames(self, rng):
        maps = rng.random((40, 6, 6))
        frames = _time_decompose(maps, 8)
        assert frames.shape == (8, 6, 6)

    def test_fewer_steps_than_frames(self, rng):
        maps = rng.random((3, 4, 4))
        frames = _time_decompose(maps, 10)
        assert frames.shape[0] == 3

    def test_energy_preserved_in_mean(self, rng):
        maps = rng.random((20, 4, 4))
        frames = _time_decompose(maps, 4)
        assert frames.mean() == pytest.approx(maps.mean(), rel=1e-9)


class TestPowerNetModel:
    def test_scores_batch_of_windows(self, small_config, rng):
        model = PowerNetModel(small_config)
        windows = Tensor(rng.random((6, 1, 5, 5)))
        scores = model(windows)
        assert scores.shape == (6,)


class TestPowerNetBaseline:
    def test_fit_and_predict(self, small_config, tiny_dataset, tiny_split):
        baseline = PowerNetBaseline(small_config)
        losses = baseline.fit(tiny_dataset, tiny_split, seed=0)
        assert len(losses) == small_config.epochs
        noise_map, runtime = baseline.predict_sample(tiny_dataset, int(tiny_split.test[0]))
        assert noise_map.shape == tiny_dataset.tile_shape
        assert runtime > 0
        assert np.all(np.isfinite(noise_map))

    def test_predict_before_fit_rejected(self, small_config, tiny_dataset):
        with pytest.raises(RuntimeError):
            PowerNetBaseline(small_config).predict_sample(tiny_dataset, 0)

    def test_predict_many(self, small_config, tiny_dataset, tiny_split):
        baseline = PowerNetBaseline(small_config)
        baseline.fit(tiny_dataset, tiny_split, seed=1)
        maps, runtimes = baseline.predict_many(tiny_dataset, tiny_split.test[:2])
        assert maps.shape[0] == 2
        assert runtimes.shape == (2,)
