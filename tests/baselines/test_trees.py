"""Tests for repro.baselines.trees."""

import numpy as np
import pytest

from repro.baselines.trees import GradientBoostedTrees, RegressionTree


@pytest.fixture()
def piecewise_data(rng):
    """Targets that a shallow tree can represent exactly."""
    features = rng.random((400, 2))
    targets = np.where(features[:, 0] > 0.5, 2.0, -1.0) + np.where(features[:, 1] > 0.3, 0.5, 0.0)
    return features, targets


class TestRegressionTree:
    def test_fits_piecewise_constant_function(self, piecewise_data):
        features, targets = piecewise_data
        tree = RegressionTree(max_depth=3, min_samples_leaf=5)
        tree.fit(features, targets)
        prediction = tree.predict(features)
        assert np.mean(np.abs(prediction - targets)) < 0.1

    def test_depth_limit_respected(self, piecewise_data):
        features, targets = piecewise_data
        tree = RegressionTree(max_depth=2).fit(features, targets)
        assert tree.depth <= 2

    def test_constant_targets_give_single_leaf(self, rng):
        features = rng.random((50, 3))
        tree = RegressionTree().fit(features, np.full(50, 7.0))
        np.testing.assert_allclose(tree.predict(features), 7.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((2, 2)))

    def test_input_validation(self, rng):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit(rng.random((10, 2)), rng.random(9))

    def test_min_samples_leaf_respected(self, rng):
        features = rng.random((30, 1))
        targets = rng.random(30)
        tree = RegressionTree(max_depth=10, min_samples_leaf=15).fit(features, targets)
        # With such a large leaf requirement only one split (or none) fits.
        assert tree.depth <= 1


class TestGradientBoostedTrees:
    def test_improves_over_mean_predictor(self, rng):
        features = rng.random((500, 3))
        targets = np.sin(4 * features[:, 0]) + features[:, 1] ** 2
        model = GradientBoostedTrees(num_trees=40, learning_rate=0.2, max_depth=3, seed=0)
        model.fit(features, targets)
        prediction = model.predict(features)
        baseline_error = np.mean(np.abs(targets - targets.mean()))
        model_error = np.mean(np.abs(targets - prediction))
        assert model_error < 0.4 * baseline_error

    def test_more_trees_fit_better(self, rng):
        features = rng.random((300, 2))
        targets = 3 * features[:, 0] - features[:, 1]
        small = GradientBoostedTrees(num_trees=5, learning_rate=0.1, seed=0).fit(features, targets)
        large = GradientBoostedTrees(num_trees=60, learning_rate=0.1, seed=0).fit(features, targets)
        small_error = np.mean(np.abs(small.predict(features) - targets))
        large_error = np.mean(np.abs(large.predict(features) - targets))
        assert large_error < small_error

    def test_subsampling_still_learns(self, rng):
        features = rng.random((300, 2))
        targets = features[:, 0]
        model = GradientBoostedTrees(num_trees=30, subsample=0.5, seed=1).fit(features, targets)
        error = np.mean(np.abs(model.predict(features) - targets))
        assert error < 0.1

    def test_num_fitted_trees(self, rng):
        model = GradientBoostedTrees(num_trees=7).fit(rng.random((50, 2)), rng.random(50))
        assert model.num_fitted_trees == 7

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.ones((2, 2)))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(num_trees=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)
