"""Shared fixtures for the test suite.

Heavy objects (designs, simulated datasets) are session-scoped so the many
tests that need "some realistic design" or "some labelled samples" do not
each pay for simulation.  Tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdn import small_test_design
from repro.workloads import build_dataset, expansion_split, generate_test_vectors
from repro.workloads.vectors import VectorConfig


@pytest.fixture(scope="session")
def tiny_design():
    """A small but complete design (3 metal layers, package, clusters)."""
    return small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)


@pytest.fixture(scope="session")
def tiny_traces(tiny_design):
    """A handful of short random test vectors for the tiny design."""
    return generate_test_vectors(
        tiny_design, 10, VectorConfig(num_steps=80, dt=1e-11), seed=3
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_design, tiny_traces):
    """Labelled dataset (simulated ground truth) for the tiny design."""
    return build_dataset(tiny_design, tiny_traces, compression_rate=0.4)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Expansion split of the tiny dataset."""
    return expansion_split(tiny_dataset, seed=0)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
