"""Shared fixtures for the test suite.

Heavy objects (designs, simulated datasets) are session-scoped so the many
tests that need "some realistic design" or "some labelled samples" do not
each pay for simulation.  Tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, distance_feature
from repro.pdn import small_test_design
from repro.workloads import build_dataset, expansion_split, generate_test_vectors
from repro.workloads.vectors import VectorConfig


@pytest.fixture(scope="session")
def tiny_design():
    """A small but complete design (3 metal layers, package, clusters)."""
    return small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)


@pytest.fixture(scope="session")
def tiny_traces(tiny_design):
    """A handful of short random test vectors for the tiny design."""
    return generate_test_vectors(
        tiny_design, 10, VectorConfig(num_steps=80, dt=1e-11), seed=3
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_design, tiny_traces):
    """Labelled dataset (simulated ground truth) for the tiny design."""
    return build_dataset(tiny_design, tiny_traces, compression_rate=0.4)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Expansion split of the tiny dataset."""
    return expansion_split(tiny_dataset, seed=0)


@pytest.fixture(scope="session")
def tiny_predictor(tiny_design):
    """An (untrained) predictor for the tiny design; weights don't matter.

    Shared by the inference and serving suites (which used to duplicate it).
    Tests must treat it as read-only — anything that mutates weights or
    normaliser builds its own predictor.
    """
    model = WorstCaseNoiseNet(
        num_bumps=tiny_design.grid.num_bumps,
        config=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(tiny_design),
        compression_rate=0.4,
    )


@pytest.fixture(scope="session")
def alt_predictor(tiny_design):
    """A predictor with *different* weights (and fingerprint) than tiny_predictor.

    The hot-swap tests (serving and gateway) use it to prove which
    checkpoint served a request: its outputs and fingerprint are
    distinguishable from the default predictor's.  Read-only, like
    ``tiny_predictor``.
    """
    model = WorstCaseNoiseNet(
        num_bumps=tiny_design.grid.num_bumps,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=99
        ),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(tiny_design),
        compression_rate=0.4,
    )


@pytest.fixture(scope="session")
def write_legacy_checkpoint():
    """Writer for the pre-PR-1 on-disk predictor layout.

    Returns ``write(predictor, path, with_sidecar)``: weights + metadata in
    the main archive and (optionally) the distance tensor in a
    ``<name>.distance.npz`` sidecar — what ``NoisePredictor.load`` must keep
    reading transparently.
    """
    from repro.nn import save_checkpoint

    def write(predictor, path, with_sidecar=True):
        metadata = {
            "normalizer": predictor.normalizer.to_dict(),
            "compression_rate": predictor.compression_rate,
            "rate_step": predictor.rate_step,
            "num_bumps": predictor.model.num_bumps,
            "model_config": {
                "distance_kernels": predictor.model.config.distance_kernels,
                "fusion_kernels": predictor.model.config.fusion_kernels,
                "prediction_kernels": predictor.model.config.prediction_kernels,
                "kernel_size": predictor.model.config.kernel_size,
                "distance_depth": predictor.model.config.distance_depth,
                "prediction_depth": predictor.model.config.prediction_depth,
                "seed": predictor.model.config.seed,
            },
            "distance_shape": list(predictor.distance.shape),
        }
        save_checkpoint(predictor.model, path, metadata=metadata)
        if with_sidecar:
            np.savez_compressed(str(path) + ".distance.npz", distance=predictor.distance)

    return write


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


# --------------------------------------------------------------------- #
# deterministic concurrency helpers (shared by the serving and gateway
# suites; see tests/gateway/conftest.py for the gateway-specific fixtures)
# --------------------------------------------------------------------- #


class GatedPredictor:
    """Predictor wrapper whose batched forward pass blocks on an event.

    The serving/gateway concurrency tests used to rely on ``max_wait``
    timing windows ("submit twice within 250 ms") which flake under load.
    Gating the forward pass instead makes the interleaving *deterministic*:
    the test waits for ``started`` (the worker is provably mid-batch), acts,
    then sets ``release``.  ``started`` is re-armable with ``clear()`` for
    multi-batch scripts.
    """

    def __init__(self, delegate, timeout: float = 10.0):
        import threading

        self.delegate = delegate
        self.timeout = timeout
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    @property
    def fingerprint(self):
        return self.delegate.fingerprint

    @property
    def compression_rate(self):
        return self.delegate.compression_rate

    @property
    def rate_step(self):
        return self.delegate.rate_step

    def predict_batch(self, features, max_batch=64):
        self.calls += 1
        self.started.set()
        if not self.release.wait(self.timeout):
            raise TimeoutError("GatedPredictor was never released")
        return self.delegate.predict_batch(features, max_batch=max_batch)

    def predict_features(self, features):
        return self.delegate.predict_features(features)

    def predict_trace(self, trace, design):
        return self.delegate.predict_trace(trace, design)

    def save(self, path):
        return self.delegate.save(path)


class FlakyPredictor:
    """Predictor wrapper that raises scripted errors before recovering.

    ``failures`` is consumed one error per ``predict_batch`` call; once the
    list is empty the wrapped delegate serves normally.  Used to test that
    batch-worker failures reject futures with the injected error and leave
    no stale in-flight entries behind.
    """

    def __init__(self, delegate, failures):
        self.delegate = delegate
        self.failures = list(failures)
        self.calls = 0

    @property
    def fingerprint(self):
        return self.delegate.fingerprint

    @property
    def compression_rate(self):
        return self.delegate.compression_rate

    @property
    def rate_step(self):
        return self.delegate.rate_step

    def predict_batch(self, features, max_batch=64):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return self.delegate.predict_batch(features, max_batch=max_batch)

    def predict_features(self, features):
        return self.delegate.predict_features(features)

    def save(self, path):
        return self.delegate.save(path)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.001):
    """Poll ``predicate`` until truthy; raise ``TimeoutError`` otherwise.

    For conditions that have no natural event to wait on (queue sizes,
    counter values).  The tight poll interval keeps tests fast while the
    generous timeout keeps them deterministic under load.
    """
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached within timeout")


@pytest.fixture()
def make_gated_predictor():
    """Factory fixture: wrap a predictor so its batches block on an event."""
    return GatedPredictor


@pytest.fixture()
def make_flaky_predictor():
    """Factory fixture: wrap a predictor with scripted batch failures."""
    return FlakyPredictor


@pytest.fixture()
def wait_for():
    """The :func:`wait_until` predicate-polling helper as a fixture."""
    return wait_until
