"""Shared fixtures for the test suite.

Heavy objects (designs, simulated datasets) are session-scoped so the many
tests that need "some realistic design" or "some labelled samples" do not
each pay for simulation.  Tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, distance_feature
from repro.pdn import small_test_design
from repro.workloads import build_dataset, expansion_split, generate_test_vectors
from repro.workloads.vectors import VectorConfig


@pytest.fixture(scope="session")
def tiny_design():
    """A small but complete design (3 metal layers, package, clusters)."""
    return small_test_design(tile_rows=8, tile_cols=8, num_loads=48, seed=0)


@pytest.fixture(scope="session")
def tiny_traces(tiny_design):
    """A handful of short random test vectors for the tiny design."""
    return generate_test_vectors(
        tiny_design, 10, VectorConfig(num_steps=80, dt=1e-11), seed=3
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_design, tiny_traces):
    """Labelled dataset (simulated ground truth) for the tiny design."""
    return build_dataset(tiny_design, tiny_traces, compression_rate=0.4)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Expansion split of the tiny dataset."""
    return expansion_split(tiny_dataset, seed=0)


@pytest.fixture(scope="session")
def tiny_predictor(tiny_design):
    """An (untrained) predictor for the tiny design; weights don't matter.

    Shared by the inference and serving suites (which used to duplicate it).
    Tests must treat it as read-only — anything that mutates weights or
    normaliser builds its own predictor.
    """
    model = WorstCaseNoiseNet(
        num_bumps=tiny_design.grid.num_bumps,
        config=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(tiny_design),
        compression_rate=0.4,
    )


@pytest.fixture(scope="session")
def write_legacy_checkpoint():
    """Writer for the pre-PR-1 on-disk predictor layout.

    Returns ``write(predictor, path, with_sidecar)``: weights + metadata in
    the main archive and (optionally) the distance tensor in a
    ``<name>.distance.npz`` sidecar — what ``NoisePredictor.load`` must keep
    reading transparently.
    """
    from repro.nn import save_checkpoint

    def write(predictor, path, with_sidecar=True):
        metadata = {
            "normalizer": predictor.normalizer.to_dict(),
            "compression_rate": predictor.compression_rate,
            "rate_step": predictor.rate_step,
            "num_bumps": predictor.model.num_bumps,
            "model_config": {
                "distance_kernels": predictor.model.config.distance_kernels,
                "fusion_kernels": predictor.model.config.fusion_kernels,
                "prediction_kernels": predictor.model.config.prediction_kernels,
                "kernel_size": predictor.model.config.kernel_size,
                "distance_depth": predictor.model.config.distance_depth,
                "prediction_depth": predictor.model.config.prediction_depth,
                "seed": predictor.model.config.seed,
            },
            "distance_shape": list(predictor.distance.shape),
        }
        save_checkpoint(predictor.model, path, metadata=metadata)
        if with_sidecar:
            np.savez_compressed(str(path) + ".distance.npz", distance=predictor.distance)

    return write


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
