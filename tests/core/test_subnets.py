"""Tests for repro.core.subnets."""

import numpy as np
import pytest

from repro.core.subnets import (
    CurrentFusionNet,
    DistanceReductionNet,
    EncoderDecoder,
    NoisePredictionNet,
)
from repro.nn import Tensor


class TestEncoderDecoder:
    @pytest.mark.parametrize("height,width", [(8, 8), (9, 7), (13, 11), (16, 12)])
    def test_output_matches_input_size(self, height, width, rng):
        # Odd sizes exercise the crop-after-upsample path.
        network = EncoderDecoder(in_channels=2, out_channels=1, hidden_channels=4, depth=2, seed=0)
        output = network(Tensor(rng.random((1, 2, height, width))))
        assert output.shape == (1, 1, height, width)

    def test_depth_one(self, rng):
        network = EncoderDecoder(3, 2, 4, depth=1, seed=0)
        output = network(Tensor(rng.random((2, 3, 10, 10))))
        assert output.shape == (2, 2, 10, 10)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            EncoderDecoder(1, 1, 4, depth=0)

    def test_gradients_reach_all_parameters(self, rng):
        network = EncoderDecoder(1, 1, 3, depth=2, seed=0)
        output = network(Tensor(rng.random((1, 1, 9, 9))))
        output.sum().backward()
        for name, parameter in network.named_parameters():
            assert parameter.grad is not None, f"no gradient for {name}"
            assert np.any(parameter.grad != 0) or parameter.grad.size == 0


class TestDistanceReductionNet:
    def test_reduces_bump_channels_to_one(self, rng):
        network = DistanceReductionNet(num_bumps=9, hidden_channels=4, seed=0)
        output = network(Tensor(rng.random((1, 9, 8, 8))))
        assert output.shape == (1, 1, 8, 8)

    def test_rejects_wrong_channel_count(self, rng):
        network = DistanceReductionNet(num_bumps=4, hidden_channels=4, seed=0)
        with pytest.raises(ValueError):
            network(Tensor(rng.random((1, 5, 8, 8))))

    def test_rejects_zero_bumps(self):
        with pytest.raises(ValueError):
            DistanceReductionNet(num_bumps=0)


class TestCurrentFusionNet:
    def test_handles_variable_length_input(self, rng):
        network = CurrentFusionNet(hidden_channels=4, seed=0)
        short = network(Tensor(rng.random((5, 1, 8, 8))))
        long = network(Tensor(rng.random((17, 1, 8, 8))))
        assert short.shape == (5, 1, 8, 8)
        assert long.shape == (17, 1, 8, 8)

    def test_odd_spatial_size(self, rng):
        network = CurrentFusionNet(hidden_channels=4, seed=0)
        output = network(Tensor(rng.random((3, 1, 9, 11))))
        assert output.shape == (3, 1, 9, 11)

    def test_rejects_multichannel_input(self, rng):
        network = CurrentFusionNet(seed=0)
        with pytest.raises(ValueError):
            network(Tensor(rng.random((3, 2, 8, 8))))


class TestNoisePredictionNet:
    def test_output_shape(self, rng):
        network = NoisePredictionNet(hidden_channels=8, seed=0)
        output = network(Tensor(rng.random((1, 4, 10, 10))))
        assert output.shape == (1, 1, 10, 10)

    def test_rejects_wrong_channel_count(self, rng):
        network = NoisePredictionNet(seed=0)
        with pytest.raises(ValueError):
            network(Tensor(rng.random((1, 3, 8, 8))))
