"""Tests for repro.core.training."""

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.training import NoiseModelTrainer


@pytest.fixture(scope="module")
def quick_training(tiny_design, tiny_dataset, tiny_split):
    """A very short training run shared by several assertions."""
    trainer = NoiseModelTrainer(
        tiny_dataset,
        design=tiny_design,
        split=tiny_split,
        model_config=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=6, seed=0),
        training_config=TrainingConfig(
            epochs=6, learning_rate=2e-3, batch_size=3, early_stopping_patience=None, seed=0
        ),
    )
    return trainer, trainer.train()


class TestNoiseModelTrainer:
    def test_history_lengths(self, quick_training):
        _, result = quick_training
        assert result.history.num_epochs == 6
        assert len(result.history.validation_loss) == 6
        assert result.history.wall_clock_seconds > 0

    def test_training_loss_decreases(self, quick_training):
        _, result = quick_training
        losses = result.history.train_loss
        assert losses[-1] < losses[0]

    def test_best_epoch_recorded(self, quick_training):
        _, result = quick_training
        history = result.history
        assert 0 <= history.best_epoch < history.num_epochs
        assert history.best_validation_loss == pytest.approx(
            min(history.validation_loss), rel=1e-9
        )

    def test_normalizer_fitted_from_training_partition(self, quick_training, tiny_dataset):
        trainer, result = quick_training
        assert result.normalizer.current_scale > 0
        assert result.normalizer.noise_scale > 0
        # Noise scale should be in the ballpark of the target magnitudes.
        assert result.normalizer.noise_scale < 2 * tiny_dataset.targets().max()

    def test_model_predicts_reasonable_range_after_training(self, quick_training, tiny_dataset):
        _, result = quick_training
        sample = tiny_dataset.samples[0]
        normalized = result.normalizer.normalize_currents(sample.features.current_maps)
        distance = result.normalizer.normalize_distance(tiny_dataset.distance)
        prediction = result.normalizer.denormalize_noise(
            result.model(normalized, distance).numpy()
        )
        # Not asserting accuracy here (too few epochs) — only sane magnitudes.
        assert prediction.shape == tiny_dataset.tile_shape
        assert np.all(np.isfinite(prediction))
        assert prediction.max() < 1.0  # below Vdd

    def test_requires_at_least_three_samples(self, tiny_dataset, tiny_design):
        with pytest.raises(ValueError):
            NoiseModelTrainer(tiny_dataset.subset([0, 1]), design=tiny_design)

    def test_split_computed_when_missing(self, tiny_dataset, tiny_design):
        trainer = NoiseModelTrainer(
            tiny_dataset,
            design=tiny_design,
            training_config=TrainingConfig(epochs=1, batch_size=4),
        )
        assert len(trainer.split.train) > 0
        assert len(trainer.split.test) > 0

    def test_early_stopping_stops_before_max_epochs(self, tiny_design, tiny_dataset, tiny_split):
        trainer = NoiseModelTrainer(
            tiny_dataset,
            design=tiny_design,
            split=tiny_split,
            model_config=ModelConfig(distance_kernels=2, fusion_kernels=2, prediction_kernels=2),
            training_config=TrainingConfig(
                epochs=50, learning_rate=1e-10, batch_size=4, early_stopping_patience=2, seed=0
            ),
        )
        result = trainer.train()
        # With a vanishing learning rate improvements stay below min_delta,
        # so patience kicks in almost immediately.
        assert result.history.num_epochs <= 10

    def test_works_without_design_context(self, tiny_dataset, tiny_split):
        trainer = NoiseModelTrainer(
            tiny_dataset,
            design=None,
            split=tiny_split,
            model_config=ModelConfig(distance_kernels=2, fusion_kernels=2, prediction_kernels=2),
            training_config=TrainingConfig(epochs=1, batch_size=4),
        )
        result = trainer.train()
        assert result.normalizer.distance_scale > 0
