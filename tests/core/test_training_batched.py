"""Batched-vs-sequential training engine equivalence (repro.core.training).

Three contracts, mirroring ``benchmarks/bench_training.py``:

* the batched engine's loss curves match the sequential engine within float
  re-association tolerance (both draw the same shuffle stream, so minibatch
  compositions are identical);
* the ``sequential=True`` escape hatch is bit-exact with a from-scratch
  replica of the seed trainer (per-sample forwards, summed minibatch loss,
  per-parameter Adam) written against the same ops;
* training is deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import WorstCaseNoiseNet
from repro.core.training import NoiseModelTrainer
from repro.nn import l1_loss, no_grad
from repro.utils.random import ensure_rng
from repro.workloads.dataset import NoiseDataset, NoiseSample

#: Documented agreement between the engines' loss curves (see DESIGN.md):
#: identical shuffle streams and minibatch compositions leave only float
#: re-association differences, orders of magnitude below this bound.
CURVE_RTOL = 1e-9

MODEL_CONFIG = ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=6, seed=0)


def _training_config(sequential: bool, epochs: int = 5, batch_size: int = 3, seed: int = 0):
    return TrainingConfig(
        epochs=epochs,
        batch_size=batch_size,
        learning_rate=2e-3,
        early_stopping_patience=None,
        seed=seed,
        sequential=sequential,
    )


def _train(dataset, design, split, **kwargs):
    trainer = NoiseModelTrainer(
        dataset,
        design=design,
        split=split,
        model_config=MODEL_CONFIG,
        training_config=_training_config(**kwargs),
    )
    return trainer, trainer.train()


class TestBatchedMatchesSequential:
    def test_loss_curves_within_tolerance(self, tiny_design, tiny_dataset, tiny_split):
        _, batched = _train(tiny_dataset, tiny_design, tiny_split, sequential=False)
        _, sequential = _train(tiny_dataset, tiny_design, tiny_split, sequential=True)
        np.testing.assert_allclose(
            batched.history.train_loss, sequential.history.train_loss, rtol=CURVE_RTOL
        )
        np.testing.assert_allclose(
            batched.history.validation_loss,
            sequential.history.validation_loss,
            rtol=CURVE_RTOL,
        )
        assert batched.history.best_epoch == sequential.history.best_epoch

    def test_final_weights_within_tolerance(self, tiny_design, tiny_dataset, tiny_split):
        _, batched = _train(tiny_dataset, tiny_design, tiny_split, sequential=False)
        _, sequential = _train(tiny_dataset, tiny_design, tiny_split, sequential=True)
        for name, value in batched.model.state_dict().items():
            np.testing.assert_allclose(
                value, sequential.model.state_dict()[name], rtol=1e-6, atol=1e-12
            )

    def test_ragged_stamp_counts_supported(self, tiny_design, tiny_dataset, tiny_split):
        # Truncate some samples' current maps so stamp counts differ; the
        # batched engine must fall back to ragged length-bucketing and still
        # match the sequential engine.
        samples = []
        for index, sample in enumerate(tiny_dataset.samples):
            maps = sample.features.current_maps
            if index % 3 == 1:
                maps = maps[: max(1, maps.shape[0] // 2)]
            features = type(sample.features)(current_maps=maps, name=sample.name)
            samples.append(
                NoiseSample(
                    features=features,
                    target=sample.target,
                    hotspot_map=sample.hotspot_map,
                    sim_runtime=sample.sim_runtime,
                    name=sample.name,
                )
            )
        ragged = NoiseDataset(
            design_name=tiny_dataset.design_name,
            tile_shape=tiny_dataset.tile_shape,
            distance=tiny_dataset.distance,
            samples=samples,
            dt=tiny_dataset.dt,
            vdd=tiny_dataset.vdd,
            hotspot_threshold=tiny_dataset.hotspot_threshold,
        )
        _, batched = _train(ragged, tiny_design, tiny_split, sequential=False, epochs=2)
        _, sequential = _train(ragged, tiny_design, tiny_split, sequential=True, epochs=2)
        np.testing.assert_allclose(
            batched.history.train_loss, sequential.history.train_loss, rtol=CURVE_RTOL
        )

    def test_seeded_runs_are_deterministic(self, tiny_design, tiny_dataset, tiny_split):
        _, first = _train(tiny_dataset, tiny_design, tiny_split, sequential=False, epochs=3)
        _, second = _train(tiny_dataset, tiny_design, tiny_split, sequential=False, epochs=3)
        assert first.history.train_loss == second.history.train_loss
        assert first.history.validation_loss == second.history.validation_loss
        for name, value in first.model.state_dict().items():
            np.testing.assert_array_equal(value, second.model.state_dict()[name])

    def test_different_shuffle_seeds_differ(self, tiny_design, tiny_dataset, tiny_split):
        _, first = _train(tiny_dataset, tiny_design, tiny_split, sequential=False, epochs=3)
        _, other = _train(
            tiny_dataset, tiny_design, tiny_split, sequential=False, epochs=3, seed=7
        )
        assert first.history.train_loss != other.history.train_loss


def _reference_adam_step(state, parameters, learning_rate):
    """Per-parameter Adam exactly as the seed (pre-fused) implementation."""
    state.setdefault("m", [np.zeros_like(p.data) for p in parameters])
    state.setdefault("v", [np.zeros_like(p.data) for p in parameters])
    state["t"] = state.get("t", 0) + 1
    beta1, beta2 = 0.9, 0.999
    bias_correction1 = 1.0 - beta1 ** state["t"]
    bias_correction2 = 1.0 - beta2 ** state["t"]
    for parameter, first, second in zip(parameters, state["m"], state["v"]):
        if parameter.grad is None:
            continue
        gradient = parameter.grad
        first *= beta1
        first += (1.0 - beta1) * gradient
        second *= beta2
        second += (1.0 - beta2) * gradient * gradient
        corrected_first = first / bias_correction1
        corrected_second = second / bias_correction2
        parameter.data = parameter.data - learning_rate * corrected_first / (
            np.sqrt(corrected_second) + 1e-8
        )


def _seed_replica_losses(dataset, split, normalizer, epochs, batch_size, learning_rate, seed):
    """Replay the seed trainer loop against the same ops: per-sample forwards,
    summed minibatch loss, DFS backward, per-parameter Adam."""
    model = WorstCaseNoiseNet(num_bumps=dataset.num_bumps, config=MODEL_CONFIG)
    parameters = model.parameters()
    state: dict = {}
    rng = ensure_rng(seed)
    normalized_distance = normalizer.normalize_distance(dataset.distance)

    def sample_loss(index):
        sample = dataset.samples[int(index)]
        current = normalizer.normalize_currents(sample.features.current_maps)
        target = normalizer.normalize_noise(sample.target)
        return l1_loss(model(current, normalized_distance), target)

    train_curve, validation_curve = [], []
    for _ in range(epochs):
        train_indices = np.array(split.train, dtype=int)
        rng.shuffle(train_indices)
        epoch_loss = 0.0
        for start in range(0, len(train_indices), batch_size):
            batch = train_indices[start:start + batch_size]
            for parameter in parameters:
                parameter.zero_grad()
            batch_loss = None
            for index in batch:
                loss = sample_loss(index)
                batch_loss = loss if batch_loss is None else batch_loss + loss
            batch_loss = batch_loss * (1.0 / len(batch))
            batch_loss.backward()
            _reference_adam_step(state, parameters, learning_rate)
            epoch_loss += batch_loss.item() * len(batch)
        train_curve.append(epoch_loss / len(train_indices))
        total = 0.0
        with no_grad():
            for index in split.validation:
                total += sample_loss(index).item()
        validation_curve.append(total / len(split.validation))
    return train_curve, validation_curve


class TestSequentialEscapeHatch:
    def test_bit_exact_with_seed_replica(self, tiny_design, tiny_dataset, tiny_split):
        trainer, result = _train(
            tiny_dataset, tiny_design, tiny_split, sequential=True, epochs=4
        )
        train_curve, validation_curve = _seed_replica_losses(
            tiny_dataset,
            tiny_split,
            trainer.normalizer,
            epochs=4,
            batch_size=3,
            learning_rate=2e-3,
            seed=0,
        )
        assert result.history.train_loss == train_curve
        assert result.history.validation_loss == validation_curve
