"""Tests for repro.core.pipeline (end-to-end framework)."""

import numpy as np
import pytest

from repro.core.config import ModelConfig, PipelineConfig, TrainingConfig
from repro.core.pipeline import RuntimeComparison, WorstCaseNoiseFramework


@pytest.fixture(scope="module")
def quick_framework(tiny_design):
    config = PipelineConfig(
        num_vectors=12,
        num_steps=60,
        compression_rate=0.4,
        model=ModelConfig(distance_kernels=3, fusion_kernels=3, prediction_kernels=4, seed=0),
        training=TrainingConfig(epochs=4, learning_rate=2e-3, batch_size=4,
                                early_stopping_patience=None, seed=0),
        seed=0,
    )
    return WorstCaseNoiseFramework(tiny_design, config)


@pytest.fixture(scope="module")
def framework_result(quick_framework):
    return quick_framework.run()


class TestRuntimeComparison:
    def test_speedup(self):
        comparison = RuntimeComparison(simulator_seconds=10.0, predictor_seconds=2.0, num_vectors=5)
        assert comparison.speedup == pytest.approx(5.0)
        assert comparison.as_dict()["speedup"] == pytest.approx(5.0)

    def test_zero_predictor_time(self):
        assert RuntimeComparison(1.0, 0.0, 1).speedup == float("inf")


@pytest.mark.slow
class TestWorstCaseNoiseFramework:
    def test_generate_vectors_count(self, quick_framework):
        vectors = quick_framework.generate_vectors()
        assert len(vectors) == 12
        assert vectors[0].num_steps == 60

    def test_run_produces_complete_result(self, framework_result, tiny_design):
        result = framework_result
        assert result.design_name == tiny_design.name
        assert len(result.dataset) == 12
        assert result.predicted_test_maps.shape == result.truth_test_maps.shape
        assert result.predicted_test_maps.shape[0] == len(result.split.test)
        assert result.report.num_vectors == len(result.split.test)
        assert result.runtime.num_vectors == len(result.split.test)
        assert result.runtime.simulator_seconds > 0
        assert result.runtime.predictor_seconds > 0

    def test_summary_contains_accuracy_and_runtime(self, framework_result):
        summary = framework_result.summary()
        assert "mean_AE_mV" in summary
        assert "speedup" in summary
        assert summary["design"] == framework_result.design_name

    def test_split_fractions(self, framework_result):
        split = framework_result.split
        total = sum(split.sizes)
        assert total == 12
        assert len(split.train) >= 5

    def test_evaluate_on_custom_indices(self, quick_framework, framework_result):
        report, runtime, predicted, truth = quick_framework.evaluate(
            framework_result.dataset, framework_result.training, indices=[0, 1]
        )
        assert predicted.shape[0] == 2
        assert runtime.num_vectors == 2

    def test_predictions_are_physically_plausible(self, framework_result, tiny_design):
        # Even a lightly trained model must predict positive, sub-Vdd noise.
        predicted = framework_result.predicted_test_maps
        assert np.all(np.isfinite(predicted))
        assert predicted.max() < tiny_design.spec.vdd


class TestCorpusWiring:
    def test_build_dataset_from_corpus(self, tmp_path):
        from repro.datagen import CorpusSpec, generate_corpus
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import WorstCaseNoiseFramework
        from repro.pdn.designs import design_from_name

        design = design_from_name("small@8")
        config = PipelineConfig(num_vectors=6, num_steps=40)
        framework = WorstCaseNoiseFramework(design, config)
        spec = CorpusSpec(
            designs=(framework.corpus_design_spec("small@8", shard_size=3),)
        )
        generate_corpus(spec, tmp_path, num_workers=0)

        from_corpus = framework.build_dataset(corpus_dir=tmp_path)
        in_process = framework.build_dataset()
        assert len(from_corpus) == len(in_process) == 6
        for ours, theirs in zip(from_corpus.samples, in_process.samples):
            assert ours.name == theirs.name
            np.testing.assert_allclose(ours.target, theirs.target, rtol=1e-9, atol=1e-13)

    def test_corpus_design_spec_mirrors_config(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import WorstCaseNoiseFramework
        from repro.pdn.designs import design_from_name

        design = design_from_name("small@8")
        config = PipelineConfig(num_vectors=20, num_steps=50, seed=3, compression_rate=0.5)
        spec = WorstCaseNoiseFramework(design, config).corpus_design_spec("small@8")
        assert spec.label == design.name
        assert spec.num_vectors == 20
        assert spec.num_steps == 50
        assert spec.seed == 3
        assert spec.compression_rate == 0.5
        assert spec.shard_size == 5

    def test_traces_and_corpus_dir_exclusive(self, tmp_path):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import WorstCaseNoiseFramework
        from repro.pdn.designs import design_from_name

        design = design_from_name("small@8")
        framework = WorstCaseNoiseFramework(design, PipelineConfig(num_vectors=4, num_steps=30))
        with pytest.raises(ValueError):
            framework.build_dataset(traces=[], corpus_dir=tmp_path)

    def test_corpus_spec_carries_transient_options(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import WorstCaseNoiseFramework
        from repro.pdn.designs import design_from_name
        from repro.sim.transient import TransientOptions

        design = design_from_name("small@8")
        framework = WorstCaseNoiseFramework(
            design,
            PipelineConfig(num_vectors=8, num_steps=40, sim_batch_size=4),
            transient_options=TransientOptions(
                method="trapezoidal", initial_state="zero", solver_method="cg"
            ),
        )
        spec = framework.corpus_spec("small@8")
        assert spec.integration_method == "trapezoidal"
        assert spec.initial_state == "zero"
        assert spec.solver_method == "cg"
        assert spec.sim_batch_size == 4
        # Unset sim_batch_size maps to true per-vector simulation.
        per_vector = WorstCaseNoiseFramework(
            design, PipelineConfig(num_vectors=8, num_steps=40)
        ).corpus_spec("small@8")
        assert per_vector.sim_batch_size == 1
        assert per_vector.solver_method == "direct"
