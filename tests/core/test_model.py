"""Tests for repro.core.model (the three-subnet composite)."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.model import WorstCaseNoiseNet
from repro.nn import no_grad


@pytest.fixture(scope="module")
def model():
    return WorstCaseNoiseNet(num_bumps=9, config=ModelConfig(seed=0))


class TestWorstCaseNoiseNet:
    def test_forward_shape(self, model, rng):
        currents = rng.random((12, 8, 8))
        distance = rng.random((9, 8, 8))
        prediction = model(currents, distance)
        assert prediction.shape == (8, 8)

    def test_one_shot_full_map(self, model, rng):
        # The whole map comes out of a single forward call (no per-tile loop).
        prediction = model(rng.random((6, 10, 10)), rng.random((9, 10, 10)))
        assert prediction.shape == (10, 10)

    def test_handles_variable_trace_length(self, model, rng):
        distance = rng.random((9, 8, 8))
        short = model(rng.random((4, 8, 8)), distance)
        long = model(rng.random((25, 8, 8)), distance)
        assert short.shape == long.shape == (8, 8)

    def test_kernel_counts_follow_config(self):
        config = ModelConfig(distance_kernels=8, fusion_kernels=8, prediction_kernels=16)
        model = WorstCaseNoiseNet(num_bumps=4, config=config)
        assert model.distance_subnet.network.input_conv.out_channels == 8
        assert model.prediction_subnet.network.input_conv.out_channels == 16

    def test_architecture_summary(self, model):
        summary = model.architecture_summary()
        assert summary["total"] == model.num_parameters()
        assert summary["total"] == (
            summary["distance_subnet"] + summary["fusion_subnet"] + summary["prediction_subnet"]
        )
        # The paper emphasises a compact model: well under a million weights.
        assert summary["total"] < 100_000

    def test_deterministic_given_seed(self, rng):
        config = ModelConfig(seed=3)
        inputs = rng.random((5, 8, 8)), rng.random((4, 8, 8))
        a = WorstCaseNoiseNet(num_bumps=4, config=config)(*inputs)
        b = WorstCaseNoiseNet(num_bumps=4, config=config)(*inputs)
        np.testing.assert_allclose(a.data, b.data)

    def test_gradients_flow_to_all_subnets(self, model, rng):
        model.zero_grad()
        prediction = model(rng.random((5, 8, 8)), rng.random((9, 8, 8)))
        prediction.sum().backward()
        for subnet in (model.distance_subnet, model.fusion_subnet, model.prediction_subnet):
            grads = [p.grad for p in subnet.parameters()]
            assert all(g is not None for g in grads)
            assert any(np.any(g != 0) for g in grads)

    def test_fusion_statistics_order(self, model, rng):
        with no_grad():
            fused = model.fuse_currents(rng.random((10, 8, 8)))
        i_max, i_mean, i_msd = fused.numpy()[0]
        # I_max >= I_mean = (max + min) / 2 pointwise by construction.
        assert np.all(i_max >= i_mean - 1e-12)

    def test_input_shape_validation(self, model, rng):
        with pytest.raises(ValueError):
            model.reduce_distance(rng.random((9, 8)))
        with pytest.raises(ValueError):
            model.fuse_currents(rng.random((8, 8)))
