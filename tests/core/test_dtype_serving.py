"""Serving-precision tests: ``NoisePredictor(dtype=...)`` end to end.

The kernel-dispatch layer makes float32 a first-class *serving* precision
(training stays float64-only).  These tests pin the seams that make that
safe: checkpoints always store float64 master weights, the serving dtype is
round-tripped through checkpoint metadata, the version fingerprint separates
precisions (so result caches can never mix them), and the trainer refuses a
low-precision model outright.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.core.training import NoiseModelTrainer
from repro.features.extraction import (
    FeatureNormalizer,
    distance_feature,
    extract_vector_features,
)


def _make_predictor(design, dtype="float64", seed=0):
    model = WorstCaseNoiseNet(
        num_bumps=design.grid.num_bumps,
        config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=seed
        ),
    )
    normalizer = FeatureNormalizer(
        current_scale=0.05, distance_scale=1000.0, noise_scale=0.15
    )
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(design),
        compression_rate=0.3,
        dtype=dtype,
    )


@pytest.fixture(scope="module")
def tiny_features(tiny_design, tiny_traces):
    return [
        extract_vector_features(trace, tiny_design, compression_rate=0.3)
        for trace in tiny_traces[:4]
    ]


def test_predictor_rejects_unsupported_dtype(tiny_design):
    with pytest.raises(TypeError):
        _make_predictor(tiny_design, dtype="float16")


def test_float32_predictor_predicts_in_float32(tiny_design, tiny_features):
    predictor = _make_predictor(tiny_design, dtype="float32")
    assert predictor.serving_dtype == "float32"
    for _, parameter in predictor.model.named_parameters():
        assert parameter.data.dtype == np.float32
    result = predictor.predict_features(tiny_features[0])
    assert result.noise_map.dtype == np.float32


def test_float32_predictions_match_float64(tiny_design, tiny_features):
    results64 = _make_predictor(tiny_design, dtype="float64").predict_batch(
        tiny_features
    )
    results32 = _make_predictor(tiny_design, dtype="float32").predict_batch(
        tiny_features
    )
    for r64, r32 in zip(results64, results32):
        np.testing.assert_allclose(
            r32.noise_map, r64.noise_map, rtol=1e-3, atol=1e-4
        )


def test_fingerprint_separates_serving_dtypes(tiny_design):
    fp64 = _make_predictor(tiny_design, dtype="float64").fingerprint
    fp32 = _make_predictor(tiny_design, dtype="float32").fingerprint
    # Same weights, same design — only the serving precision differs, and the
    # fingerprint must still differ (result caches key on it).
    assert fp64 != fp32


def test_save_load_round_trips_serving_dtype(tiny_design, tmp_path):
    predictor = _make_predictor(tiny_design, dtype="float32")
    path = tmp_path / "predictor.npz"
    predictor.save(path)

    # Master weights on disk are always float64, whatever the serving dtype.
    with np.load(path, allow_pickle=False) as data:
        metadata = json.loads(str(data["__metadata_json__"]))
        for name in data.files:
            if not name.startswith("__") and name != "distance":
                assert data[name].dtype == np.float64
    assert metadata["serving_dtype"] == "float32"

    loaded = NoisePredictor.load(path)
    assert loaded.serving_dtype == "float32"
    for _, parameter in loaded.model.named_parameters():
        assert parameter.data.dtype == np.float32


def test_load_dtype_override(tiny_design, tmp_path):
    path = tmp_path / "predictor.npz"
    _make_predictor(tiny_design, dtype="float32").save(path)
    loaded = NoisePredictor.load(path, dtype="float64")
    assert loaded.serving_dtype == "float64"
    for _, parameter in loaded.model.named_parameters():
        assert parameter.data.dtype == np.float64


def test_old_checkpoint_without_serving_dtype_loads_float64(tiny_design, tmp_path):
    # Checkpoints written before the dispatch layer carry no serving_dtype
    # key; they must keep loading — at float64, the historical behaviour.
    path = tmp_path / "old.npz"
    _make_predictor(tiny_design, dtype="float64").save(path)
    with np.load(path, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    metadata = json.loads(str(arrays["__metadata_json__"]))
    del metadata["serving_dtype"]
    arrays["__metadata_json__"] = np.array(json.dumps(metadata))
    np.savez(path, **arrays)

    loaded = NoisePredictor.load(path)
    assert loaded.serving_dtype == "float64"
    assert NoisePredictor.load(path, dtype="float32").serving_dtype == "float32"


def test_training_rejects_float32_model(tiny_design, tiny_dataset, tiny_split):
    trainer = NoiseModelTrainer(
        tiny_dataset,
        design=tiny_design,
        split=tiny_split,
        model_config=ModelConfig(
            distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0
        ),
        training_config=TrainingConfig(
            epochs=1, batch_size=4, early_stopping_patience=None, seed=0
        ),
    )
    trainer.model.astype("float32")
    with pytest.raises(TypeError, match="float64"):
        trainer.train()
