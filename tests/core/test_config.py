"""Tests for repro.core.config."""

import pytest

from repro.core.config import ModelConfig, PipelineConfig, TrainingConfig


class TestModelConfig:
    def test_paper_defaults(self):
        config = ModelConfig()
        # C1 = C2 = 8 and C3 = 16, as in Sec. 4.1 of the paper.
        assert config.distance_kernels == 8
        assert config.fusion_kernels == 8
        assert config.prediction_kernels == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"distance_kernels": 0},
            {"kernel_size": 4},
            {"distance_depth": 0},
            {"prediction_depth": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ModelConfig(**kwargs)


class TestTrainingConfig:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.loss == "l1"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"epochs": 0},
            {"batch_size": 0},
            {"loss": "hinge"},
            {"early_stopping_patience": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestPipelineConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert 0 < config.compression_rate <= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vectors": 0},
            {"num_steps": 0},
            {"dt": 0.0},
            {"compression_rate": 0.0},
            {"compression_rate": 1.5},
            {"train_fraction": 1.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)
