"""Tests for repro.core.inference."""

import numpy as np
import pytest

from repro.core.config import ModelConfig
from repro.core.inference import NoisePredictor
from repro.core.model import WorstCaseNoiseNet
from repro.features.extraction import FeatureNormalizer, distance_feature


@pytest.fixture(scope="module")
def predictor(tiny_design):
    model = WorstCaseNoiseNet(
        num_bumps=tiny_design.grid.num_bumps,
        config=ModelConfig(distance_kernels=4, fusion_kernels=4, prediction_kernels=4, seed=0),
    )
    normalizer = FeatureNormalizer(current_scale=0.05, distance_scale=1000.0, noise_scale=0.15)
    return NoisePredictor(
        model=model,
        normalizer=normalizer,
        distance=distance_feature(tiny_design),
        compression_rate=0.4,
    )


class TestNoisePredictor:
    def test_predict_trace_shape_and_runtime(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        assert result.noise_map.shape == tiny_design.tile_grid.shape
        assert result.runtime_seconds > 0
        assert result.name == tiny_traces[0].name
        assert np.all(np.isfinite(result.noise_map))

    def test_predict_features_matches_trace_path(self, predictor, tiny_design, tiny_traces):
        from repro.features.extraction import extract_vector_features

        features = extract_vector_features(tiny_traces[0], tiny_design, compression_rate=0.4)
        from_features = predictor.predict_features(features)
        from_trace = predictor.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(from_features.noise_map, from_trace.noise_map, rtol=1e-9)

    def test_predict_dataset(self, predictor, tiny_dataset):
        maps, runtimes = predictor.predict_dataset(tiny_dataset, indices=[0, 1, 2])
        assert maps.shape == (3,) + tiny_dataset.tile_shape
        assert runtimes.shape == (3,)

    def test_prediction_result_helpers(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        assert result.worst_noise == pytest.approx(result.noise_map.max())
        hotspots = result.hotspot_map(0.1)
        assert hotspots.dtype == bool

    def test_distance_shape_validation(self, predictor, rng):
        with pytest.raises(ValueError):
            NoisePredictor(
                model=predictor.model,
                normalizer=predictor.normalizer,
                distance=rng.random((3, 4)),
            )

    def test_bump_count_mismatch_rejected(self, predictor, rng):
        with pytest.raises(ValueError):
            NoisePredictor(
                model=predictor.model,
                normalizer=predictor.normalizer,
                distance=rng.random((2, 8, 8)),
            )

    def test_save_and_load_roundtrip(self, predictor, tiny_design, tiny_traces, tmp_path):
        path = tmp_path / "predictor.npz"
        predictor.save(path)
        restored = NoisePredictor.load(path)
        original = predictor.predict_trace(tiny_traces[0], tiny_design)
        reloaded = restored.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(original.noise_map, reloaded.noise_map, rtol=1e-9)
        assert restored.compression_rate == predictor.compression_rate

    def test_load_rejects_checkpoint_without_metadata(self, predictor, tmp_path):
        from repro.nn import save_checkpoint

        path = tmp_path / "bare.npz"
        save_checkpoint(predictor.model, path)
        with pytest.raises(ValueError):
            NoisePredictor.load(path)
