"""Tests for repro.core.inference."""

import numpy as np
import pytest

from repro.core.inference import NoisePredictor


@pytest.fixture(scope="module")
def predictor(tiny_predictor):
    """The shared untrained predictor (see tests/conftest.py)."""
    return tiny_predictor


class TestNoisePredictor:
    def test_predict_trace_shape_and_runtime(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        assert result.noise_map.shape == tiny_design.tile_grid.shape
        assert result.runtime_seconds > 0
        assert result.name == tiny_traces[0].name
        assert np.all(np.isfinite(result.noise_map))

    def test_predict_features_matches_trace_path(self, predictor, tiny_design, tiny_traces):
        from repro.features.extraction import extract_vector_features

        features = extract_vector_features(tiny_traces[0], tiny_design, compression_rate=0.4)
        from_features = predictor.predict_features(features)
        from_trace = predictor.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(from_features.noise_map, from_trace.noise_map, rtol=1e-9)

    def test_predict_dataset(self, predictor, tiny_dataset):
        maps, runtimes = predictor.predict_dataset(tiny_dataset, indices=[0, 1, 2])
        assert maps.shape == (3,) + tiny_dataset.tile_shape
        assert runtimes.shape == (3,)

    def test_prediction_result_helpers(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        assert result.worst_noise == pytest.approx(result.noise_map.max())
        hotspots = result.hotspot_map(0.1)
        assert hotspots.dtype == bool

    def test_hotspot_map_accepts_zero_threshold(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        hotspots = result.hotspot_map(0.0)
        assert hotspots.dtype == bool
        np.testing.assert_array_equal(hotspots, result.noise_map > 0.0)

    def test_hotspot_map_rejects_negative_threshold(self, predictor, tiny_design, tiny_traces):
        result = predictor.predict_trace(tiny_traces[0], tiny_design)
        with pytest.raises(ValueError):
            result.hotspot_map(-0.05)

    def test_distance_shape_validation(self, predictor, rng):
        with pytest.raises(ValueError):
            NoisePredictor(
                model=predictor.model,
                normalizer=predictor.normalizer,
                distance=rng.random((3, 4)),
            )

    def test_bump_count_mismatch_rejected(self, predictor, rng):
        with pytest.raises(ValueError):
            NoisePredictor(
                model=predictor.model,
                normalizer=predictor.normalizer,
                distance=rng.random((2, 8, 8)),
            )

    def test_save_and_load_roundtrip(self, predictor, tiny_design, tiny_traces, tmp_path):
        path = tmp_path / "predictor.npz"
        predictor.save(path)
        restored = NoisePredictor.load(path)
        original = predictor.predict_trace(tiny_traces[0], tiny_design)
        reloaded = restored.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(original.noise_map, reloaded.noise_map, rtol=1e-9)
        assert restored.compression_rate == predictor.compression_rate

    def test_save_is_single_self_contained_file(self, predictor, tmp_path):
        path = tmp_path / "predictor.npz"
        predictor.save(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["predictor.npz"]
        np.testing.assert_array_equal(NoisePredictor.load(path).distance, predictor.distance)

    def test_save_and_load_accept_str_paths(self, predictor, tmp_path):
        path = str(tmp_path / "predictor.npz")
        predictor.save(path)
        restored = NoisePredictor.load(path)
        np.testing.assert_array_equal(restored.distance, predictor.distance)

    def test_load_legacy_sidecar_checkpoint(
        self, predictor, tiny_design, tiny_traces, tmp_path, write_legacy_checkpoint
    ):
        path = tmp_path / "legacy.npz"
        write_legacy_checkpoint(predictor, path, with_sidecar=True)
        restored = NoisePredictor.load(path)
        original = predictor.predict_trace(tiny_traces[0], tiny_design)
        reloaded = restored.predict_trace(tiny_traces[0], tiny_design)
        np.testing.assert_allclose(original.noise_map, reloaded.noise_map, rtol=1e-9)

    def test_legacy_roundtrip_preserves_settings_and_distance(
        self, predictor, tmp_path, write_legacy_checkpoint
    ):
        path = tmp_path / "legacy.npz"
        write_legacy_checkpoint(predictor, path, with_sidecar=True)
        restored = NoisePredictor.load(path)
        assert restored.compression_rate == predictor.compression_rate
        assert restored.rate_step == predictor.rate_step
        np.testing.assert_array_equal(restored.distance, predictor.distance)
        assert restored.fingerprint == predictor.fingerprint

    def test_load_without_any_distance_source_fails(
        self, predictor, tmp_path, write_legacy_checkpoint
    ):
        path = tmp_path / "incomplete.npz"
        write_legacy_checkpoint(predictor, path, with_sidecar=False)
        with pytest.raises(FileNotFoundError, match="distance"):
            NoisePredictor.load(path)

    def test_save_then_load_ignores_stale_sidecar(
        self, predictor, tiny_design, tiny_traces, tmp_path, write_legacy_checkpoint, rng
    ):
        # A modern self-contained checkpoint sitting next to a stale legacy
        # sidecar must serve the *embedded* distance tensor, not the sidecar.
        path = tmp_path / "modern.npz"
        predictor.save(path)
        np.savez_compressed(
            str(path) + ".distance.npz", distance=rng.random(predictor.distance.shape)
        )
        restored = NoisePredictor.load(path)
        np.testing.assert_array_equal(restored.distance, predictor.distance)

    def test_load_rejects_checkpoint_without_metadata(self, predictor, tmp_path):
        from repro.nn import save_checkpoint

        path = tmp_path / "bare.npz"
        save_checkpoint(predictor.model, path)
        with pytest.raises(ValueError):
            NoisePredictor.load(path)
