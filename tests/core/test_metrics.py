"""Tests for repro.core.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    absolute_error,
    evaluate_predictions,
    hotspot_missing_rate,
    hotspot_precision_recall,
    relative_error,
    roc_auc,
)


class TestHotspotPrecisionRecall:
    def test_perfect_prediction(self):
        truth = np.array([[0.2, 0.05], [0.15, 0.01]])
        precision, recall = hotspot_precision_recall(truth, truth, 0.1)
        assert (precision, recall) == (1.0, 1.0)

    def test_mixed_prediction(self):
        truth = np.array([0.2, 0.2, 0.05, 0.05])
        predicted = np.array([0.2, 0.05, 0.2, 0.05])  # one TP, one FN, one FP
        precision, recall = hotspot_precision_recall(predicted, truth, 0.1)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_degenerate_cases_follow_conventions(self):
        cold = np.array([0.01, 0.02])
        hot = np.array([0.2, 0.3])
        # Nothing predicted hot: empty claim, precision 1; recall catches 0.
        assert hotspot_precision_recall(cold, hot, 0.1) == (1.0, 0.0)
        # Nothing truly hot: recall 1 by convention, precision punishes FPs.
        assert hotspot_precision_recall(hot, cold, 0.1) == (0.0, 1.0)
        # Nothing hot anywhere: both 1.
        assert hotspot_precision_recall(cold, cold, 0.1) == (1.0, 1.0)

    def test_recall_complements_missing_rate(self, rng):
        predicted = rng.random((5, 6, 6)) * 0.2
        truth = rng.random((5, 6, 6)) * 0.2
        _, recall = hotspot_precision_recall(predicted, truth, 0.1)
        assert recall == pytest.approx(1.0 - hotspot_missing_rate(predicted, truth, 0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            hotspot_precision_recall(np.ones(2), np.ones(3), 0.1)
        with pytest.raises(ValueError):
            hotspot_precision_recall(np.ones(2), np.ones(2), 0.0)


class TestAbsoluteRelativeError:
    def test_absolute_error_values(self):
        np.testing.assert_allclose(
            absolute_error(np.array([1.0, 2.0]), np.array([0.5, 3.0])), [0.5, 1.0]
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            absolute_error(np.ones(2), np.ones(3))

    def test_relative_error_values(self):
        re = relative_error(np.array([0.11]), np.array([0.10]))
        assert re[0] == pytest.approx(0.1)

    def test_relative_error_floor_prevents_blowup(self):
        re = relative_error(np.array([0.01]), np.array([0.0]), floor=1e-2)
        assert re[0] == pytest.approx(1.0)

    def test_relative_error_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            relative_error(np.ones(2), np.ones(2), floor=0.0)

    def test_perfect_prediction_zero_errors(self, rng):
        truth = rng.random((3, 4))
        assert absolute_error(truth, truth).max() == 0
        assert relative_error(truth, truth).max() == 0


class TestHotspotMissingRate:
    def test_no_hotspots_returns_zero(self):
        assert hotspot_missing_rate(np.zeros((2, 2)), np.zeros((2, 2)), 0.1) == 0.0

    def test_all_found(self):
        truth = np.array([[0.2, 0.0], [0.0, 0.2]])
        assert hotspot_missing_rate(truth, truth, 0.1) == 0.0

    def test_half_missed(self):
        truth = np.array([0.2, 0.2, 0.0])
        predicted = np.array([0.2, 0.05, 0.0])
        assert hotspot_missing_rate(predicted, truth, 0.1) == pytest.approx(0.5)

    def test_overprediction_not_penalised(self):
        truth = np.array([0.2, 0.0])
        predicted = np.array([0.2, 0.3])
        assert hotspot_missing_rate(predicted, truth, 0.1) == 0.0


class TestRocAuc:
    def test_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert roc_auc(scores, labels) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([True, True, False, False])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_scores_near_half(self, rng):
        scores = rng.random(4000)
        labels = rng.random(4000) > 0.7
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_single_class_returns_half(self):
        assert roc_auc(np.array([0.3, 0.4]), np.array([True, True])) == 0.5

    def test_ties_handled(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([True, False, True, False])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    @given(seed=st.integers(0, 200), size=st.integers(5, 200))
    @settings(max_examples=30, deadline=None)
    def test_auc_is_invariant_to_monotone_transform(self, seed, size):
        generator = np.random.default_rng(seed)
        scores = generator.random(size)
        labels = generator.random(size) > 0.5
        original = roc_auc(scores, labels)
        transformed = roc_auc(np.exp(3 * scores), labels)
        assert original == pytest.approx(transformed, abs=1e-12)


class TestEvaluatePredictions:
    def test_report_fields(self, rng):
        truth = 0.05 + 0.1 * rng.random((5, 6, 6))
        predicted = truth + 0.002 * rng.standard_normal(truth.shape)
        report = evaluate_predictions(predicted, truth, hotspot_threshold=0.1)
        assert report.num_vectors == 5
        assert report.num_tiles == 36
        assert report.mean_ae_mv < 5
        assert report.mean_ae <= report.p99_ae <= report.max_ae
        assert report.mean_re <= report.max_re
        assert 0.0 <= report.hotspot_missing_rate <= 1.0
        assert 0.0 <= report.auc <= 1.0

    def test_perfect_prediction(self, rng):
        truth = 0.05 + 0.1 * rng.random((3, 4, 4))
        report = evaluate_predictions(truth.copy(), truth, hotspot_threshold=0.1)
        assert report.mean_ae == 0.0
        assert report.max_re == 0.0
        assert report.hotspot_missing_rate == 0.0
        assert report.auc == pytest.approx(1.0)

    def test_as_dict_and_table_row(self, rng):
        truth = 0.1 * rng.random((2, 3, 3)) + 0.01
        report = evaluate_predictions(truth, truth, hotspot_threshold=0.05)
        payload = report.as_dict()
        assert "mean_AE_mV" in payload and "AUC" in payload
        assert "mV" in report.table_row()

    def test_shape_checks(self, rng):
        with pytest.raises(ValueError):
            evaluate_predictions(np.ones((2, 3, 3)), np.ones((3, 3, 3)), 0.1)
        with pytest.raises(ValueError):
            evaluate_predictions(np.ones((3, 3)), np.ones((3, 3)), 0.1)
