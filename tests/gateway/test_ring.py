"""Consistent-hash ring: determinism, balance, minimal movement."""

from __future__ import annotations

import pytest

from repro.gateway import ConsistentHashRing

KEYS = [f"design-{i}@{scale:.1f}" for i in range(250) for scale in (0.1, 0.5)]


def test_assignment_is_deterministic_across_instances():
    a = ConsistentHashRing(range(4))
    b = ConsistentHashRing([3, 2, 1, 0])  # order must not matter
    assert [a.assign(k) for k in KEYS] == [b.assign(k) for k in KEYS]


def test_every_node_gets_a_reasonable_share():
    ring = ConsistentHashRing(range(4))
    counts = {node: 0 for node in range(4)}
    for key in KEYS:
        counts[ring.assign(key)] += 1
    assert set(counts) == {0, 1, 2, 3}
    # With 64 virtual nodes each, no shard should be starved or dominant.
    for node, count in counts.items():
        share = count / len(KEYS)
        assert 0.10 <= share <= 0.45, f"node {node} owns {share:.0%} of keys"


def test_adding_a_node_only_moves_keys_to_that_node():
    before = ConsistentHashRing(range(3))
    after = ConsistentHashRing(range(3))
    after.add(3)
    moved = 0
    for key in KEYS:
        old, new = before.assign(key), after.assign(key)
        if old != new:
            moved += 1
            assert new == 3, "a key moved to a pre-existing node"
    # ~1/4 of the keys should move; far fewer than a modulo remap would.
    assert 0 < moved < len(KEYS) // 2


def test_removing_a_node_keeps_other_assignments_stable():
    full = ConsistentHashRing(range(4))
    shrunk = ConsistentHashRing(range(4))
    shrunk.remove(2)
    for key in KEYS:
        old = full.assign(key)
        if old != 2:
            assert shrunk.assign(key) == old
        else:
            assert shrunk.assign(key) != 2


def test_membership_add_remove_idempotent():
    ring = ConsistentHashRing()
    assert len(ring) == 0
    ring.add("a")
    ring.add("a")
    assert len(ring) == 1 and "a" in ring and ring.nodes == ("a",)
    ring.remove("missing")  # no-op
    ring.remove("a")
    assert len(ring) == 0 and "a" not in ring


def test_empty_ring_rejects_assignment():
    with pytest.raises(ValueError, match="empty ring"):
        ConsistentHashRing().assign("anything")


def test_replicas_must_be_positive():
    with pytest.raises(ValueError):
        ConsistentHashRing(range(2), replicas=0)
