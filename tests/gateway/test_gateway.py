"""Gateway correctness: routing, admission control, lifecycle.

Concurrency-sensitive scripts use the shared :class:`GatedPredictor`
(installed into a shard via hot swap) so the worker is *provably* mid-batch
before the test acts — no ``max_wait`` timing windows anywhere.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway import (
    GatewayClosed,
    GatewayOverloaded,
    LoadShedError,
    ScreeningGateway,
)


def test_screen_matches_direct_prediction(make_gateway, tiny_design, tiny_features, expected_results, assert_noise_close):
    gateway = make_gateway()
    results = gateway.screen(
        [(features, tiny_design.name) for features in tiny_features]
    )
    assert len(results) == len(expected_results)
    for result, expected in zip(results, expected_results):
        assert_noise_close(result, expected)
    # Every accepted request resolved: the admission gauge returns to zero.
    assert gateway.metrics.gauge("gateway.queue_depth").last == 0
    assert gateway.metrics.counter("gateway.requests").value == len(tiny_features)


def test_scenario_payloads_are_deterministic(make_gateway, tiny_design, assert_noise_close):
    gateway = make_gateway()
    first, second = gateway.screen(
        [("power_virus", tiny_design), ("power_virus", tiny_design.name)],
        num_steps=120,
        seed=7,
    )
    # Same scenario, design, and seed — whether the design travels as an
    # object or a name, the worker must materialise the same trace.
    assert_noise_close(first, second)
    assert first.noise_map.size and float(first.worst_noise) == float(first.worst_noise)


def test_async_submit_from_event_loop(make_gateway, tiny_design, tiny_features, expected_results, assert_noise_close):
    gateway = make_gateway()

    async def main():
        results = await asyncio.gather(
            *(
                gateway.submit(features, tiny_design.name)
                for features in tiny_features[:4]
            )
        )
        return results

    for result, expected in zip(asyncio.run(main()), expected_results):
        assert_noise_close(result, expected)


def test_designs_partition_across_shards(
    make_gateway, tiny_design, second_design_name, tiny_features
):
    gateway = make_gateway()
    home = gateway.shard_for(tiny_design.name)
    other = gateway.shard_for(second_design_name)
    assert home != other
    gateway.screen(
        [
            (tiny_features[0], tiny_design.name),
            (tiny_features[1], second_design_name),
            (tiny_features[2], tiny_design.name),
        ]
    )
    shards = gateway.health()["shards"]
    # Each shard's registry partition only ever saw its own design, so the
    # LRU entries are disjoint — the warm-cache property sharding exists for.
    assert shards[home]["resident"] == [tiny_design.name]
    assert shards[other]["resident"] == [second_design_name]


def test_health_snapshot_shape(make_gateway):
    gateway = make_gateway(num_shards=3, queue_limit=17)
    health = gateway.health()
    assert health["accepting"] is True
    assert health["outstanding"] == 0
    assert health["queue_limit"] == 17
    assert set(health["shards"]) == {0, 1, 2}
    for shard in health["shards"].values():
        assert shard["state"] == "healthy"
        assert shard["restarts"] == 0


def test_reject_policy_backpressure(
    make_gateway, make_gated_predictor, wait_for, tiny_design, tiny_predictor, tiny_features
):
    gateway = make_gateway(queue_limit=4, max_batch=1)
    gated = make_gated_predictor(tiny_predictor)
    gateway.swap_checkpoint(tiny_design.name, gated, persist=False).result(timeout=5)

    admitted = [gateway.submit_async(tiny_features[0], tiny_design.name)]
    assert gated.started.wait(5)  # the worker is provably mid-batch
    for i in (1, 2, 3):
        admitted.append(gateway.submit_async(tiny_features[i], tiny_design.name))
    with pytest.raises(GatewayOverloaded) as overload:
        gateway.submit_async(tiny_features[4], tiny_design.name)
    assert overload.value.retry_after_s > 0

    gated.release.set()
    for future in admitted:
        assert future.result(timeout=10) is not None
    metrics = gateway.metrics
    assert metrics.counter("gateway.rejected").value == 1
    # Capacity freed: the same submission is admitted now.
    assert gateway.submit_async(tiny_features[4], tiny_design.name).result(timeout=10)


def test_shed_oldest_spares_dispatched_requests(
    make_gateway, make_gated_predictor, tiny_design, tiny_predictor, tiny_features
):
    gateway = make_gateway(queue_limit=2, shed_policy="shed-oldest", max_batch=1)
    gated = make_gated_predictor(tiny_predictor)
    gateway.swap_checkpoint(tiny_design.name, gated, persist=False).result(timeout=5)

    in_flight = gateway.submit_async(tiny_features[0], tiny_design.name)
    assert gated.started.wait(5)
    waiting = gateway.submit_async(tiny_features[1], tiny_design.name)
    fresh = gateway.submit_async(tiny_features[2], tiny_design.name)

    # The oldest *waiting* request was shed; the dispatched one was spared
    # (shedding it would waste the forward pass already under way).
    with pytest.raises(LoadShedError):
        waiting.result(timeout=5)
    gated.release.set()
    assert in_flight.result(timeout=10) is not None
    assert fresh.result(timeout=10) is not None
    assert gateway.metrics.counter("gateway.shed").value == 1


def test_cancelled_request_is_skipped_not_served(
    make_gateway, make_gated_predictor, tiny_design, tiny_predictor, tiny_features
):
    gateway = make_gateway(max_batch=1)
    gated = make_gated_predictor(tiny_predictor)
    gateway.swap_checkpoint(tiny_design.name, gated, persist=False).result(timeout=5)

    blocked = gateway.submit_async(tiny_features[0], tiny_design.name)
    assert gated.started.wait(5)
    cancelled = gateway.submit_async(tiny_features[1], tiny_design.name)
    assert cancelled.cancel()
    gated.release.set()
    assert blocked.result(timeout=10) is not None
    # Draining close() proves the cancelled entry did not wedge the shard.
    gateway.close()
    assert cancelled.cancelled()


def test_close_drains_backlog(make_gateway, tiny_design, tiny_features):
    gateway = make_gateway()
    futures = [
        gateway.submit_async(features, tiny_design.name)
        for features in tiny_features
    ]
    gateway.close(drain=True)
    for future in futures:
        assert future.result(timeout=0) is not None  # already resolved


def test_close_without_drain_fails_pending_with_typed_error(
    make_gateway, make_gated_predictor, wait_for, tiny_design, tiny_predictor, tiny_features
):
    import threading

    gateway = make_gateway(max_batch=1)
    gated = make_gated_predictor(tiny_predictor)
    gateway.swap_checkpoint(tiny_design.name, gated, persist=False).result(timeout=5)

    blocked = gateway.submit_async(tiny_features[0], tiny_design.name)
    assert gated.started.wait(5)
    waiting = gateway.submit_async(tiny_features[1], tiny_design.name)

    closer = threading.Thread(target=lambda: gateway.close(drain=False, timeout=10))
    closer.start()
    # Both futures are failed immediately — before the worker is released.
    wait_for(lambda: blocked.done() and waiting.done(), timeout=5)
    with pytest.raises(GatewayClosed):
        blocked.result(timeout=0)
    with pytest.raises(GatewayClosed):
        waiting.result(timeout=0)
    gated.release.set()
    closer.join(timeout=10)
    assert not closer.is_alive()
    # The worker's late answer lost the race and was counted as dropped.
    assert gateway.metrics.counter("gateway.duplicates_dropped").value >= 1


def test_submit_and_swap_after_close_raise(make_gateway, tiny_design, tiny_features):
    gateway = make_gateway()
    gateway.close()
    with pytest.raises(GatewayClosed):
        gateway.submit_async(tiny_features[0], tiny_design.name)
    with pytest.raises(GatewayClosed):
        gateway.swap_checkpoint(tiny_design.name)
    gateway.close()  # idempotent


def test_invalid_configuration_rejected(gateway_root):
    with pytest.raises(ValueError, match="shed_policy"):
        ScreeningGateway(gateway_root, shed_policy="drop-newest")
    with pytest.raises(ValueError):
        ScreeningGateway(gateway_root, num_shards=0)


def test_context_manager_closes(gateway_root, tiny_design, tiny_features):
    with ScreeningGateway(gateway_root, num_shards=1) as gateway:
        future = gateway.submit_async(tiny_features[0], tiny_design.name)
    assert future.result(timeout=0) is not None
    assert gateway.health()["accepting"] is False
