"""TCP front door: the newline-delimited JSON protocol end to end."""

from __future__ import annotations

import asyncio
import json

from repro.gateway import GatewayServer


async def _roundtrip(reader, writer, payload) -> dict:
    """Send one request object (or a raw line) and read its response."""
    line = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    writer.write(line + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_protocol_end_to_end(make_gateway, tiny_design, tiny_predictor):
    gateway = make_gateway()
    server = GatewayServer(gateway)

    async def scenario():
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            # Screen by scenario family name.
            screen = await _roundtrip(
                reader,
                writer,
                {"design": tiny_design.name, "scenario": "power_virus",
                 "num_steps": 120, "seed": 3},
            )
            assert screen["ok"] is True
            assert screen["design"] == tiny_design.name
            assert isinstance(screen["worst_noise_v"], float)
            assert screen["latency_ms"] >= 0

            # Same screen through a parameterised spec dict: identical
            # request, identical answer (the connection is pipelined).
            spec = await _roundtrip(
                reader,
                writer,
                {"design": tiny_design.name,
                 "scenario": {"family": "power_virus"},
                 "num_steps": 120, "seed": 3},
            )
            assert spec["ok"] is True
            assert spec["worst_noise_v"] == screen["worst_noise_v"]

            # Health reflects the traffic this connection generated.
            health = await _roundtrip(reader, writer, {"op": "health"})
            assert health["ok"] is True
            assert health["health"]["accepting"] is True
            shard = str(gateway.shard_for(tiny_design.name))
            residents = {
                name
                for entry in health["health"]["shards"].values()
                for name in entry["resident"]
            }
            assert tiny_design.name in residents
            assert shard in health["health"]["shards"]

            # Swap (reload from disk) reports the serving fingerprint.
            swap = await _roundtrip(
                reader, writer, {"op": "swap", "design": tiny_design.name}
            )
            assert swap["ok"] is True
            assert swap["fingerprint"] == tiny_predictor.fingerprint

            # Protocol errors are responses, not dropped connections.
            malformed = await _roundtrip(reader, writer, b"this is not json")
            assert malformed["ok"] is False
            assert "malformed" in malformed["error"]

            unknown_op = await _roundtrip(reader, writer, {"op": "sudo"})
            assert unknown_op["ok"] is False and "unknown op" in unknown_op["error"]

            unknown_design = await _roundtrip(
                reader, writer, {"design": "no-such-design", "scenario": "power_virus"}
            )
            assert unknown_design["ok"] is False
            assert "KeyError" in unknown_design["error"]

            # The connection survived every error above.
            again = await _roundtrip(reader, writer, {"op": "health"})
            assert again["ok"] is True
        finally:
            writer.close()
            await writer.wait_closed()
            await server.stop()

    asyncio.run(scenario())


def test_closed_gateway_maps_to_typed_response(make_gateway, tiny_design):
    gateway = make_gateway()
    server = GatewayServer(gateway)

    async def scenario():
        host, port = await server.start()
        await gateway.aclose()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            response = await _roundtrip(
                reader,
                writer,
                {"design": tiny_design.name, "scenario": "power_virus"},
            )
            assert response == {"ok": False, "error": "closed"}
        finally:
            writer.close()
            await writer.wait_closed()
            await server.stop()

    asyncio.run(scenario())
