"""Fault-injection suite: the gateway's invariants under scripted failure.

Every scenario here is deterministic — faults fire at exact hook points
(dequeue, batch start, checkpoint load, swap), not on timers — and each
test closes by asserting the core guarantees: **no request lost, none
double-answered, restarts back off, drain resolves every future.**
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gateway import FaultInjector, WorkerCrashed, WorkerKilled


class KillOnce(FaultInjector):
    """Kill the first worker that starts a batch; record every request seen."""

    def __init__(self):
        self.killed = False
        self.seen = {}

    def before_batch(self, shard_id, requests):
        for request in requests:
            self.seen[id(request)] = request
        if not self.killed:
            self.killed = True
            raise WorkerKilled("scripted kill")


class AlwaysKill(FaultInjector):
    """Every batch start is fatal."""

    def before_batch(self, shard_id, requests):
        raise WorkerKilled("scripted kill (persistent)")


class DuplicateOnce(FaultInjector):
    """Deliver the first dequeued request twice."""

    def __init__(self):
        self.request = None

    def on_dequeue(self, shard_id, request):
        if self.request is None:
            self.request = request
            return (request, request)
        return (request,)


class DelayOnce(FaultInjector):
    """Swallow the first delivery; the test re-injects it later."""

    def __init__(self):
        self.stashed = None

    def on_dequeue(self, shard_id, request):
        if self.stashed is None:
            self.stashed = request
            return ()
        return (request,)


class FailLoadOnce(FaultInjector):
    """Fail the first checkpoint fetch with a scripted error."""

    def __init__(self, error):
        self.error = error
        self.fired = False

    def on_checkpoint_load(self, shard_id, design_name):
        if not self.fired:
            self.fired = True
            raise self.error


class FailSwap(FaultInjector):
    """Every swap application fails (recoverably)."""

    def before_swap(self, shard_id, design_name):
        raise RuntimeError("swap rejected by injector")


class KillDuringSwap(FaultInjector):
    """The first swap kills the worker mid-application."""

    def __init__(self):
        self.fired = False

    def before_swap(self, shard_id, design_name):
        if not self.fired:
            self.fired = True
            raise WorkerKilled("killed while swapping")


def test_worker_killed_mid_batch_loses_nothing(
    make_gateway, wait_for, tiny_design, tiny_features, expected_results, assert_noise_close
):
    faults = KillOnce()
    gateway = make_gateway(faults=faults)
    futures = [
        gateway.submit_async(features, tiny_design.name)
        for features in tiny_features[:6]
    ]
    for future, expected in zip(futures, expected_results):
        assert_noise_close(future.result(timeout=15), expected)

    shard = gateway.shard_for(tiny_design.name)
    metrics = gateway.metrics
    assert metrics.counter("gateway.restarts").value == 1
    assert metrics.counter("gateway.retries").value >= 1
    # Exactly-once: nothing was double-answered anywhere in the recovery.
    assert metrics.counter("gateway.duplicates_dropped").value == 0
    for request in faults.seen.values():
        assert request.answers == 1
    assert gateway.backoff_history(shard) == [pytest.approx(0.01)]
    wait_for(lambda: gateway.health()["shards"][shard]["state"] == "healthy")


def test_persistent_crashes_exhaust_retries_with_backoff(
    make_gateway, wait_for, tiny_design, tiny_features
):
    gateway = make_gateway(faults=AlwaysKill(), max_retries=1)
    future = gateway.submit_async(tiny_features[0], tiny_design.name)
    with pytest.raises(WorkerCrashed) as crashed:
        future.result(timeout=15)
    # The typed error chains to the underlying kill.
    assert isinstance(crashed.value.__cause__, WorkerKilled)

    shard = gateway.shard_for(tiny_design.name)
    # Two crashes (initial + one retry); the supervisor's delays doubled.
    history = gateway.backoff_history(shard)
    assert history == [pytest.approx(0.01), pytest.approx(0.02)]
    wait_for(lambda: gateway.metrics.counter("gateway.restarts").value == 2)


def test_duplicated_delivery_answers_exactly_once(
    make_gateway, tiny_design, tiny_features, expected_results, assert_noise_close
):
    faults = DuplicateOnce()
    gateway = make_gateway(faults=faults)
    result = gateway.submit_async(tiny_features[0], tiny_design.name).result(timeout=10)
    assert_noise_close(result, expected_results[0])
    assert faults.request.answers == 1
    assert gateway.metrics.counter("gateway.duplicates_dropped").value == 1


def test_delayed_delivery_is_late_not_lost(
    make_gateway, wait_for, tiny_design, tiny_features, expected_results, assert_noise_close
):
    faults = DelayOnce()
    gateway = make_gateway(faults=faults)
    future = gateway.submit_async(tiny_features[0], tiny_design.name)
    wait_for(lambda: faults.stashed is not None)
    assert not future.done()
    # Re-inject the delayed delivery the way a retrying transport would.
    gateway._shards[gateway.shard_for(tiny_design.name)].inbox.put(faults.stashed)
    assert_noise_close(future.result(timeout=10), expected_results[0])
    assert faults.stashed.answers == 1


def test_checkpoint_load_failure_fails_group_not_worker(
    make_gateway, tiny_design, tiny_features, expected_results, assert_noise_close
):
    error = RuntimeError("checkpoint corrupt")
    gateway = make_gateway(faults=FailLoadOnce(error))
    with pytest.raises(RuntimeError, match="checkpoint corrupt"):
        gateway.submit_async(tiny_features[0], tiny_design.name).result(timeout=10)
    # The worker survived: no restart, and the next request is served.
    result = gateway.submit_async(tiny_features[0], tiny_design.name).result(timeout=10)
    assert_noise_close(result, expected_results[0])
    assert gateway.metrics.counter("gateway.restarts").value == 0
    assert gateway.metrics.counter("gateway.failures").value == 1


def test_swap_during_in_flight_batch_quiesces_between_batches(
    make_gateway,
    make_gated_predictor,
    tiny_design,
    tiny_predictor,
    alt_predictor,
    tiny_features,
    expected_results, assert_noise_close
):
    gateway = make_gateway(max_batch=1)
    gated = make_gated_predictor(tiny_predictor)
    gateway.swap_checkpoint(tiny_design.name, gated, persist=False).result(timeout=5)

    blocked = gateway.submit_async(tiny_features[0], tiny_design.name)
    assert gated.started.wait(5)  # old checkpoint is provably mid-batch
    swap_done = gateway.swap_checkpoint(tiny_design.name, alt_predictor, persist=False)
    after = gateway.submit_async(tiny_features[1], tiny_design.name)
    # The swap waits for the in-flight batch — only then does it apply.
    assert not swap_done.done()
    gated.release.set()

    # The in-flight request finished on the OLD checkpoint...
    assert_noise_close(blocked.result(timeout=10), expected_results[0])
    # ...the swap resolved to the NEW fingerprint...
    assert swap_done.result(timeout=10) == alt_predictor.fingerprint
    assert alt_predictor.fingerprint != tiny_predictor.fingerprint
    # ...and the next request was served by the new weights.
    new_result = after.result(timeout=10)
    expected_new = alt_predictor.predict_batch([tiny_features[1]])[0]
    assert_noise_close(new_result, expected_new)
    assert not np.allclose(new_result.noise_map, expected_results[1].noise_map)


def test_failed_swap_rejects_future_and_spares_worker(
    make_gateway, tiny_design, alt_predictor, tiny_features, expected_results, assert_noise_close
):
    gateway = make_gateway(faults=FailSwap())
    swap_done = gateway.swap_checkpoint(tiny_design.name, alt_predictor, persist=False)
    with pytest.raises(RuntimeError, match="swap rejected"):
        swap_done.result(timeout=10)
    # Worker alive, still serving the original checkpoint.
    result = gateway.submit_async(tiny_features[0], tiny_design.name).result(timeout=10)
    assert_noise_close(result, expected_results[0])
    assert gateway.metrics.counter("gateway.restarts").value == 0
    assert gateway.metrics.counter("gateway.swaps").value == 0


def test_kill_during_swap_crashes_worker_but_resolves_swap_future(
    make_gateway, wait_for, tiny_design, alt_predictor, tiny_features, expected_results, assert_noise_close
):
    gateway = make_gateway(faults=KillDuringSwap())
    swap_done = gateway.swap_checkpoint(tiny_design.name, alt_predictor, persist=False)
    with pytest.raises(WorkerKilled):
        swap_done.result(timeout=10)
    wait_for(lambda: gateway.metrics.counter("gateway.restarts").value == 1)
    # The replacement worker serves requests normally.
    result = gateway.submit_async(tiny_features[0], tiny_design.name).result(timeout=10)
    assert_noise_close(result, expected_results[0])


def test_drain_resolves_every_future_even_under_crashes(
    make_gateway, tiny_design, tiny_features, expected_results, assert_noise_close
):
    gateway = make_gateway(faults=KillOnce())
    futures = [
        gateway.submit_async(features, tiny_design.name)
        for features in tiny_features
    ]
    gateway.close(drain=True)
    # Drain kept restarting through the crash: every future resolved, with
    # a real result (the kill-once fault is retryable within max_retries).
    assert all(future.done() for future in futures)
    for future, expected in zip(futures, expected_results):
        assert_noise_close(future.result(timeout=0), expected)
