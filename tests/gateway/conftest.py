"""Fixtures for the gateway suite.

Everything here is built for *deterministic* concurrency testing: gateways
get a private metrics registry (so counter assertions never see another
test's traffic), a tiny restart backoff (so crash/restart scripts finish in
milliseconds), and the shared :class:`GatedPredictor` /
:class:`FlakyPredictor` helpers from the top-level conftest are installed
into a shard via hot swap rather than by racing the worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.extraction import extract_vector_features_batch
from repro.gateway import ConsistentHashRing, ScreeningGateway
from repro.obs.metrics import MetricsRegistry
from repro.serving import PredictorRegistry


@pytest.fixture(scope="module")
def tiny_features(tiny_traces, tiny_design, tiny_predictor):
    """Pre-extracted features for the tiny traces (matches the predictor)."""
    return extract_vector_features_batch(
        tiny_traces,
        tiny_design,
        compression_rate=tiny_predictor.compression_rate,
        rate_step=tiny_predictor.rate_step,
    )


@pytest.fixture(scope="module")
def expected_results(tiny_features, tiny_predictor):
    """Direct (no gateway) predictions for ``tiny_features``, as ground truth."""
    return tiny_predictor.predict_batch(tiny_features)


@pytest.fixture()
def gateway_root(tmp_path, tiny_design, tiny_predictor):
    """A checkpoint root with the tiny design's predictor registered."""
    root = tmp_path / "checkpoints"
    PredictorRegistry(root).register(tiny_design.name, tiny_predictor)
    return root


@pytest.fixture()
def second_design_name(tiny_design, gateway_root, tiny_predictor):
    """A second registered design name that hashes to the *other* shard.

    The ring is deterministic, so we can search candidate names offline for
    one that a two-shard ring assigns differently from ``tiny_design`` —
    giving the sharding tests a guaranteed cross-shard pair.
    """
    ring = ConsistentHashRing(range(2))
    home = ring.assign(tiny_design.name)
    for suffix in "bcdefgh":
        candidate = f"{tiny_design.name}-{suffix}"
        if ring.assign(candidate) != home:
            PredictorRegistry(gateway_root).register(candidate, tiny_predictor)
            return candidate
    raise AssertionError("no candidate name landed on the other shard")


@pytest.fixture()
def make_gateway(gateway_root, tiny_design):
    """Factory for test gateways; closes every gateway it made on teardown.

    Defaults tuned for the suite: two shards, a private metrics registry,
    millisecond restart backoff, and a design factory that resolves any
    registered name to the tiny design (all test designs share its grid).
    """
    created: list[ScreeningGateway] = []

    def make(**kwargs) -> ScreeningGateway:
        kwargs.setdefault("num_shards", 2)
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("backoff_cap", 0.08)
        kwargs.setdefault("metrics", MetricsRegistry())
        kwargs.setdefault("design_factory", lambda name: tiny_design)
        gateway = ScreeningGateway(gateway_root, **kwargs)
        created.append(gateway)
        return gateway

    yield make
    for gateway in created:
        gateway.close(timeout=10.0)


@pytest.fixture(scope="session")
def assert_noise_close():
    """Asserter: two predictions came from the same checkpoint and features."""

    def check(result, expected) -> None:
        assert np.allclose(result.noise_map, expected.noise_map)
        assert np.isclose(result.worst_noise, expected.worst_noise)

    return check
