"""Tests for repro.features.extraction."""

import numpy as np
import pytest

from repro.features.extraction import (
    FeatureNormalizer,
    current_summary_maps,
    distance_feature,
    extract_vector_features,
    fit_normalizer,
    normalized_distance_feature,
)
from repro.features.spatial import load_current_maps


class TestDistanceFeature:
    def test_shape(self, tiny_design):
        feature = distance_feature(tiny_design)
        assert feature.shape == (tiny_design.grid.num_bumps,) + tiny_design.tile_grid.shape

    def test_nonnegative_and_bounded_by_diagonal(self, tiny_design):
        feature = distance_feature(tiny_design)
        diagonal = np.hypot(tiny_design.die.width, tiny_design.die.height)
        assert feature.min() >= 0
        assert feature.max() <= diagonal

    def test_normalized_version_in_unit_range(self, tiny_design):
        feature = normalized_distance_feature(tiny_design)
        assert feature.max() <= 1.0


class TestCurrentSummaryMaps:
    def test_channels(self, rng):
        maps = rng.random((20, 4, 5))
        summary = current_summary_maps(maps)
        assert summary.shape == (3, 4, 5)
        np.testing.assert_allclose(summary[0], maps.max(axis=0))
        np.testing.assert_allclose(summary[1], 0.5 * (maps.max(axis=0) + maps.min(axis=0)))
        np.testing.assert_allclose(summary[2], maps.mean(axis=0) + 3 * maps.std(axis=0))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            current_summary_maps(np.ones((4, 4)))

    def test_ordering_i_max_at_least_i_mean(self, rng):
        maps = rng.random((30, 6, 6))
        summary = current_summary_maps(maps)
        assert np.all(summary[0] >= summary[1] - 1e-12)


class TestFeatureNormalizer:
    def test_roundtrip_noise(self):
        normalizer = FeatureNormalizer(current_scale=2.0, distance_scale=3.0, noise_scale=0.5)
        noise = np.array([[0.1, 0.2]])
        np.testing.assert_allclose(
            normalizer.denormalize_noise(normalizer.normalize_noise(noise)), noise
        )

    def test_dict_roundtrip(self):
        normalizer = FeatureNormalizer(1.5, 2.5, 3.5)
        clone = FeatureNormalizer.from_dict(normalizer.to_dict())
        assert clone.current_scale == normalizer.current_scale
        assert clone.noise_scale == normalizer.noise_scale

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            FeatureNormalizer(current_scale=0.0)


class TestFitNormalizer:
    def test_scales_from_data(self, tiny_design, tiny_dataset):
        currents = np.concatenate(
            [sample.features.current_maps for sample in tiny_dataset.samples]
        )
        noise = tiny_dataset.targets()
        normalizer = fit_normalizer(tiny_design, currents, noise)
        assert normalizer.current_scale > 0
        assert normalizer.noise_scale > 0
        assert normalizer.distance_scale == pytest.approx(
            np.hypot(tiny_design.die.width, tiny_design.die.height)
        )
        # Normalised currents land mostly inside [0, ~1].
        normalized = normalizer.normalize_currents(currents)
        assert np.percentile(normalized, 99.0) <= 1.01

    def test_without_noise_uses_vdd_fraction(self, tiny_design, rng):
        normalizer = fit_normalizer(tiny_design, rng.random((10, 4, 4)))
        assert normalizer.noise_scale == pytest.approx(0.2 * tiny_design.spec.vdd)


class TestExtractVectorFeatures:
    def test_with_compression(self, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        features = extract_vector_features(trace, tiny_design, compression_rate=0.25)
        assert features.num_steps == int(round(0.25 * trace.num_steps))
        assert features.tile_shape == tiny_design.tile_grid.shape
        assert features.compression is not None
        assert features.name == trace.name

    def test_without_compression(self, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        features = extract_vector_features(trace, tiny_design, compression_rate=None)
        assert features.num_steps == trace.num_steps
        assert features.compression is None
        np.testing.assert_allclose(
            features.current_maps, load_current_maps(trace, tiny_design)
        )

    def test_summary_maps_shape(self, tiny_design, tiny_traces):
        features = extract_vector_features(tiny_traces[0], tiny_design, compression_rate=0.5)
        assert features.summary_maps().shape == (3,) + tiny_design.tile_grid.shape


class TestBatchExtraction:
    def test_matches_per_vector(self, tiny_design, tiny_traces):
        from repro.features.extraction import (
            extract_vector_features,
            extract_vector_features_batch,
        )

        batched = extract_vector_features_batch(
            tiny_traces[:4], tiny_design, compression_rate=0.4
        )
        for trace, ours in zip(tiny_traces, batched):
            theirs = extract_vector_features(trace, tiny_design, compression_rate=0.4)
            assert ours.name == theirs.name
            np.testing.assert_array_equal(ours.current_maps, theirs.current_maps)

    def test_no_compression(self, tiny_design, tiny_traces):
        from repro.features.extraction import extract_vector_features_batch

        batched = extract_vector_features_batch(
            tiny_traces[:2], tiny_design, compression_rate=None
        )
        assert batched[0].current_maps.shape[0] == tiny_traces[0].num_steps
        assert batched[0].compression is None

    def test_empty_batch(self, tiny_design):
        from repro.features.extraction import extract_vector_features_batch

        assert extract_vector_features_batch([], tiny_design) == []

    def test_rejects_wrong_load_count(self, tiny_design):
        from repro.features.extraction import extract_vector_features_batch
        from repro.sim.waveform import CurrentTrace

        bad = CurrentTrace(np.ones((5, 3)), 1e-11)
        with pytest.raises(ValueError):
            extract_vector_features_batch([bad], tiny_design)
