"""Tests for repro.features.temporal (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.temporal import compress_current_maps, compress_trace
from repro.sim.waveform import CurrentTrace


def _random_maps(rng, num_steps=60, shape=(4, 4)):
    return rng.random((num_steps,) + shape)


class TestCompressCurrentMaps:
    def test_keeps_requested_fraction(self, rng):
        maps = _random_maps(rng, 100)
        result = compress_current_maps(maps, compression_rate=0.3)
        assert result.num_selected == 30
        assert result.compressed_maps.shape == (30, 4, 4)

    def test_indices_sorted_and_unique(self, rng):
        maps = _random_maps(rng, 80)
        result = compress_current_maps(maps, 0.4)
        indices = result.selected_indices
        assert np.all(np.diff(indices) > 0)
        assert indices.min() >= 0 and indices.max() < 80

    def test_full_rate_keeps_everything(self, rng):
        maps = _random_maps(rng, 50)
        result = compress_current_maps(maps, 1.0)
        assert result.num_selected == 50
        np.testing.assert_allclose(result.compressed_maps, maps)

    def test_keeps_the_largest_total_current_stamp(self, rng):
        # The worst-case-relevant heavy-switching stamps must never be dropped.
        maps = _random_maps(rng, 100)
        totals = maps.reshape(100, -1).sum(axis=1)
        result = compress_current_maps(maps, 0.2)
        assert int(np.argmax(totals)) in result.selected_indices

    def test_statistic_matching_beats_naive_top_selection(self, rng):
        # The selected subset's mu+3sigma should be at least as close to the
        # original as simply taking the top-r fraction.
        maps = _random_maps(rng, 200)
        totals = maps.reshape(200, -1).sum(axis=1)
        original = totals.mean() + 3 * totals.std()
        result = compress_current_maps(maps, 0.3)
        top = np.sort(totals)[-60:]
        naive_error = abs(original - (top.mean() + 3 * top.std()))
        assert result.statistic_error <= naive_error + 1e-9

    def test_rejects_invalid_rate(self, rng):
        maps = _random_maps(rng, 10)
        with pytest.raises(ValueError):
            compress_current_maps(maps, 0.0)
        with pytest.raises(ValueError):
            compress_current_maps(maps, 1.5)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            compress_current_maps(np.ones((5, 4)), 0.5)

    def test_lower_tail_rate_bounded_by_rate(self, rng):
        maps = _random_maps(rng, 100)
        result = compress_current_maps(maps, 0.25)
        assert 0.0 <= result.lower_tail_rate <= 0.25 + 1e-9

    @given(
        num_steps=st.integers(5, 120),
        rate=st.floats(0.05, 1.0),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_input(self, num_steps, rate, seed):
        generator = np.random.default_rng(seed)
        maps = generator.random((num_steps, 3, 3))
        result = compress_current_maps(maps, rate)
        # Selected indices are a subset of the original stamps, without
        # duplicates, and the compressed maps are exactly those stamps.
        indices = result.selected_indices
        assert len(np.unique(indices)) == len(indices)
        assert 1 <= result.num_selected <= num_steps
        np.testing.assert_allclose(result.compressed_maps, maps[indices])
        expected_keep = max(1, int(round(rate * num_steps)))
        assert result.num_selected == min(expected_keep, num_steps)


class TestCompressTrace:
    def test_trace_subset_consistent(self, rng):
        currents = rng.random((60, 5))
        trace = CurrentTrace(currents, 1e-11, name="x")
        compressed, indices = compress_trace(trace, 0.5)
        assert compressed.num_steps == 30
        np.testing.assert_allclose(compressed.currents, currents[indices])
        assert compressed.name == "x"
