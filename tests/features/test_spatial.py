"""Tests for repro.features.spatial."""

import numpy as np
import pytest

from repro.features.spatial import (
    average_current_map,
    load_current_maps,
    node_noise_to_tile_map,
    tile_incidence_matrix,
    tile_load_count_map,
    tile_nominal_current_map,
)
from repro.sim.waveform import CurrentTrace


class TestTileIncidenceMatrix:
    def test_one_hot_rows(self):
        incidence = tile_incidence_matrix(np.array([0, 2, 2]), 3)
        dense = incidence.toarray()
        np.testing.assert_allclose(dense.sum(axis=1), 1.0)
        assert dense[1, 2] == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            tile_incidence_matrix(np.array([0, 5]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            tile_incidence_matrix(np.zeros((2, 2), dtype=int), 4)


class TestLoadCurrentMaps:
    def test_shape_and_conservation(self, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        maps = load_current_maps(trace, tiny_design)
        assert maps.shape == (trace.num_steps,) + tiny_design.tile_grid.shape
        # Tiling conserves the total current at every stamp.
        np.testing.assert_allclose(
            maps.reshape(trace.num_steps, -1).sum(axis=1), trace.total_current(), rtol=1e-12
        )

    def test_load_count_mismatch_rejected(self, tiny_design):
        bad = CurrentTrace(np.ones((5, 3)), 1e-11)
        with pytest.raises(ValueError):
            load_current_maps(bad, tiny_design)

    def test_average_map(self, tiny_design, tiny_traces):
        trace = tiny_traces[0]
        average = average_current_map(trace, tiny_design)
        np.testing.assert_allclose(
            average, load_current_maps(trace, tiny_design).mean(axis=0), rtol=1e-12
        )


class TestNodeNoiseToTileMap:
    def test_matches_design_tile_shape(self, tiny_design, rng):
        node_noise = rng.random(tiny_design.mna.num_die_nodes)
        tile_map = node_noise_to_tile_map(node_noise, tiny_design)
        assert tile_map.shape == tiny_design.tile_grid.shape
        assert tile_map.max() == pytest.approx(node_noise.max())

    def test_wrong_length_rejected(self, tiny_design):
        with pytest.raises(ValueError):
            node_noise_to_tile_map(np.ones(3), tiny_design)


class TestStaticTileMaps:
    def test_load_count_map_total(self, tiny_design):
        counts = tile_load_count_map(tiny_design)
        assert counts.sum() == tiny_design.num_loads

    def test_nominal_current_map_total(self, tiny_design):
        totals = tile_nominal_current_map(tiny_design)
        assert totals.sum() == pytest.approx(tiny_design.loads.total_nominal_current)
